// Local search with random disruption — the Levine-style baseline family
// (Levine et al., arXiv 1312.6246) that beats the classic greedy pair on
// the HC-suite ETC model, here used as the absolute baseline behind the
// study's optimality-gap columns.
//
// One run is: greedy seed (Min-Min, or the iterative technique's seed
// schedule when one is supplied) -> descent over the move+swap
// neighborhood of the completion-time vector until a local minimum ->
// random disruption of a fraction of the tasks -> descend again, keeping
// the best local minimum across the configured number of restarts.
//
// The descent visits neighbors in a fixed canonical order and evaluates
// each candidate incrementally (a move or swap changes at most two
// machines' loads). `first_improvement` picks the first improving
// neighbor and rescans; the default steepest variant applies the best
// improving neighbor per pass. Both are registered: "Local-Search"
// (steepest) and "Local-Search-FI" (first improvement).
//
// Determinism: all stochastic decisions come from a private stream seeded
// by `config.seed` — the caller's TieBreaker is never consumed — so the
// same seed yields the same schedule, trace and RNG consumption. The
// anytime contract matches Tabu/GSA: `core::cancellation_requested()` is
// polled between descent passes and restarts, and the best-so-far mapping
// returned on cancellation is always complete and valid.
#pragma once

#include "ga/chromosome.hpp"
#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

struct LocalSearchConfig {
  /// Random-disruption restarts after the first descent.
  std::size_t max_restarts = 8;
  /// Fraction of tasks reassigned (uniformly) per disruption.
  double disruption = 0.25;
  /// First-improvement descent instead of steepest descent.
  bool first_improvement = false;
  bool seed_with_minmin = true;
  std::uint64_t seed = 0x10CA15ULL;
};

class LocalSearch final : public Heuristic {
 public:
  explicit LocalSearch(LocalSearchConfig config = {});

  std::string_view name() const noexcept override {
    return config_.first_improvement ? "Local-Search-FI" : "Local-Search";
  }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                         const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override { return false; }

  const LocalSearchConfig& config() const noexcept { return config_; }

 private:
  LocalSearchConfig config_;
};

}  // namespace hcsched::heuristics
