#include "heuristics/localsearch/localsearch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/cancel.hpp"
#include "heuristics/minmin.hpp"
#include "obs/metrics.hpp"

namespace hcsched::heuristics {

namespace {

/// Makespan after replacing two machines' loads; O(m) over the load vector.
double span_with(const std::vector<double>& load, std::size_t a, double new_a,
                 std::size_t b, double new_b) {
  double span = std::max(new_a, new_b);
  for (std::size_t m = 0; m < load.size(); ++m) {
    if (m != a && m != b && load[m] > span) span = load[m];
  }
  return span;
}

std::vector<double> loads_of(const Problem& problem,
                             const ga::Chromosome& chromosome) {
  std::vector<double> load = problem.initial_ready_times();
  for (std::size_t i = 0; i < chromosome.size(); ++i) {
    load[chromosome.genes()[i]] +=
        problem.etc_at(problem.tasks()[i], chromosome.genes()[i]);
  }
  return load;
}

/// One descent pass over the move+swap neighborhood in canonical order
/// (all moves by (task, target), then all swaps by (task, task)).
/// Steepest: remember the best improving neighbor and apply it at the end.
/// First improvement: apply the first improving neighbor immediately.
/// Returns false when the pass found no improvement (local minimum).
bool descent_pass(const Problem& problem, ga::Chromosome& chromosome,
                  std::vector<double>& load, double& makespan,
                  bool first_improvement) {
  const std::size_t machines = problem.num_machines();
  const std::size_t n = chromosome.size();
  double best_span = makespan;
  bool is_swap = false;
  std::size_t best_i = 0;
  std::size_t best_j = 0;  // target slot for a move, second task for a swap
  bool found = false;

  const auto apply_move = [&](std::size_t i, std::size_t to) {
    const auto task = problem.tasks()[i];
    const std::size_t from = chromosome.genes()[i];
    load[from] -= problem.etc_at(task, from);
    load[to] += problem.etc_at(task, to);
    chromosome.genes()[i] = static_cast<std::uint32_t>(to);
  };
  const auto apply_swap = [&](std::size_t i, std::size_t j) {
    const std::size_t a = chromosome.genes()[i];
    const std::size_t b = chromosome.genes()[j];
    apply_move(i, b);
    apply_move(j, a);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const auto task = problem.tasks()[i];
    const std::size_t from = chromosome.genes()[i];
    const double etc_from = problem.etc_at(task, from);
    for (std::size_t to = 0; to < machines; ++to) {
      if (to == from) continue;
      const double span =
          span_with(load, from, load[from] - etc_from, to,
                    load[to] + problem.etc_at(task, to));
      if (span < best_span - 1e-12) {
        if (first_improvement) {
          apply_move(i, to);
          makespan = span;
          return true;
        }
        best_span = span;
        is_swap = false;
        best_i = i;
        best_j = to;
        found = true;
      }
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t a = chromosome.genes()[i];
    const double etc_ia = problem.etc_at(problem.tasks()[i], a);
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t b = chromosome.genes()[j];
      if (a == b) continue;  // same machine: swapping changes nothing
      const double new_a =
          load[a] - etc_ia + problem.etc_at(problem.tasks()[j], a);
      const double new_b = load[b] - problem.etc_at(problem.tasks()[j], b) +
                           problem.etc_at(problem.tasks()[i], b);
      const double span = span_with(load, a, new_a, b, new_b);
      if (span < best_span - 1e-12) {
        if (first_improvement) {
          apply_swap(i, j);
          makespan = span;
          return true;
        }
        best_span = span;
        is_swap = true;
        best_i = i;
        best_j = j;
        found = true;
      }
    }
  }
  if (!found) return false;
  if (is_swap) {
    apply_swap(best_i, best_j);
  } else {
    apply_move(best_i, best_j);
  }
  makespan = best_span;
  return true;
}

/// Descend to a local minimum; polls cancellation between passes so the
/// anytime contract holds. Returns the number of neighbors applied.
std::size_t descend(const Problem& problem, ga::Chromosome& chromosome,
                    std::vector<double>& load, double& makespan,
                    bool first_improvement) {
  std::size_t steps = 0;
  while (descent_pass(problem, chromosome, load, makespan,
                      first_improvement)) {
    ++steps;
    if (core::cancellation_requested()) break;
  }
  return steps;
}

}  // namespace

LocalSearch::LocalSearch(LocalSearchConfig config) : config_(config) {}

Schedule LocalSearch::do_map(const Problem& problem, TieBreaker& ties) const {
  return do_map_seeded(problem, ties, nullptr);
}

Schedule LocalSearch::do_map_seeded(const Problem& problem, TieBreaker& ties,
                                    const Schedule* seed) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("Local-Search: no machines");
  }
  rng::Rng rng(config_.seed);

  ga::Chromosome current = [&] {
    if (seed != nullptr) return ga::Chromosome::from_schedule(problem, *seed);
    if (config_.seed_with_minmin) {
      MinMin minmin;
      rng::TieBreaker det;
      return ga::Chromosome::from_schedule(problem, minmin.map(problem, det));
    }
    return ga::Chromosome::random(problem, rng);
  }();

  const std::size_t n = current.size();
  const std::size_t machines = problem.num_machines();
  std::vector<double> load = loads_of(problem, current);
  double span = current.evaluate(problem);
  std::size_t steps =
      descend(problem, current, load, span, config_.first_improvement);

  ga::Chromosome best = current;
  double best_span = span;

  std::size_t restarts = 0;
  if (machines >= 2 && n > 0) {
    const std::size_t disrupted = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(config_.disruption * static_cast<double>(n))));
    for (std::size_t restart = 0; restart < config_.max_restarts; ++restart) {
      if (core::cancellation_requested()) break;
      // Random disruption of the best-so-far local minimum.
      current = best;
      for (std::size_t d = 0; d < disrupted; ++d) {
        const std::size_t task = static_cast<std::size_t>(rng.below(n));
        current.genes()[task] =
            static_cast<std::uint32_t>(rng.below(machines));
      }
      ++restarts;
      load = loads_of(problem, current);
      span = current.evaluate(problem);
      steps += descend(problem, current, load, span,
                       config_.first_improvement);
      if (span < best_span - 1e-12) {
        best = current;
        best_span = span;
      }
    }
  }

  HCSCHED_METRIC_COUNT("hcsched_localsearch_steps_total",
                       "Local-search neighborhood steps applied", steps);
  HCSCHED_METRIC_COUNT("hcsched_localsearch_restarts_total",
                       "Local-search random-disruption restarts", restarts);
  (void)ties;  // stochastic decisions come from the private seeded stream
  return best.decode(problem);
}

}  // namespace hcsched::heuristics
