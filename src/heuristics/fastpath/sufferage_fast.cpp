// The incremental Sufferage kernel (see fastpath.hpp for the switch surface
// and docs/FASTPATH.md for the full equivalence argument).
//
// Cache: for each pending task, the exact minimum completion time `min1`,
// the first slot attaining it `min1_slot`, the minimum over every other
// slot `min2` with its first attaining slot `min2_slot`, and the
// epsilon-tied candidate list (ascending slots within TieBreaker epsilon of
// min1 — exactly what the reference's choose_min builds). The decision
// replays through choose_among (same bookkeeping, same RNG/script draws),
// and the sufferage value follows exactly:
//     second_ct = (chosen == min1_slot) ? min2 : min1
// because when the chosen slot is not the first exact-minimum slot, the
// min-over-others set still contains min1_slot.
//
// Invalidation: a pass commits one claim per contested slot; a cached entry
// goes stale iff some committed slot is in its tied set or is its
// min2_slot (any other slot's score sat strictly above min2 and only
// moved further up — ready times never decrease). Note the structure of
// claim/evict makes this invalidation total in practice: every task that
// survives a pass fought over a slot that ends up committed, so surviving
// entries are rescanned. The kernel's win over the reference is therefore
// the scan itself — one fused vectorized best-two/tied scan
// (minscan::sufferage_scan) over a contiguous EtcView row, against the
// reference's four indirection-heavy passes — not replay frequency; the
// cache keeps the replay path correct should the requeue semantics ever
// change.
#include <algorithm>
#include <limits>
#include <span>

#include "core/check.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/fastpath/minscan.hpp"
#include "heuristics/fastpath/reuse.hpp"
#include "heuristics/fastpath/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hcsched::heuristics::fastpath {

Schedule sufferage_fast(const Problem& problem, TieBreaker& ties,
                        SufferageRequeue requeue,
                        std::vector<SufferageStep>* trace) {
  Schedule schedule(problem);
  const std::size_t n = problem.num_tasks();
  const std::size_t m = problem.num_machines();
  if (n == 0) return schedule;
  HCSCHED_PRECONDITION(m > 0, "sufferage_fast: problem with ", n,
                       " tasks but no machines");

  HCSCHED_SPAN(kernel_span, "fastpath.sufferage");
  HCSCHED_SPAN_ATTR(kernel_span, "tasks", obs::JsonValue(n));
  HCSCHED_SPAN_ATTR(kernel_span, "machines", obs::JsonValue(m));
#if HCSCHED_TRACE
  std::uint64_t rescores = 0;
  std::uint64_t replays = 0;
#endif

  Workspace& ws = thread_workspace();
  const EtcView& view = acquire_view(problem, ws.scratch_view);

  // Structure-of-arrays per-task state carved from the thread's bump pools.
  ws.doubles.reset(3 * m + 2 * n);
  ws.positions.reset(n * m);
  ws.indices.reset(5 * n + m);
  ws.flags.reset(n);
  const std::span<double> ready = ws.doubles.take(m);
  const std::span<double> claim_suff = ws.doubles.take(m);
  const std::span<double> claim_ct = ws.doubles.take(m);
  const std::span<double> min1 = ws.doubles.take(n);
  const std::span<double> min2 = ws.doubles.take(n);
  const std::span<std::size_t> tied_pool = ws.positions.take(n * m);
  const std::span<std::uint32_t> min1_slot = ws.indices.take(n);
  const std::span<std::uint32_t> min2_slot = ws.indices.take(n);
  const std::span<std::uint32_t> tied_count = ws.indices.take(n);
  const std::span<std::uint32_t> pending_a = ws.indices.take(n);
  const std::span<std::uint32_t> pending_b = ws.indices.take(n);
  const std::span<std::uint32_t> claim_pos = ws.indices.take(m);
  const std::span<unsigned char> stale = ws.flags.take(n);

  std::copy(problem.initial_ready_times().begin(),
            problem.initial_ready_times().end(), ready.begin());
  for (std::size_t p = 0; p < n; ++p) {
    pending_a[p] = static_cast<std::uint32_t>(p);
  }
  std::fill(stale.begin(), stale.end(), static_cast<unsigned char>(1));

  const std::vector<TaskId>& tasks = problem.tasks();
  const std::vector<MachineId>& machines = problem.machines();
  constexpr std::uint32_t kNoClaim =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t* cur = pending_a.data();
  std::uint32_t* nxt = pending_b.data();
  std::size_t pending_count = n;
  std::size_t pass = 0;
  while (pending_count > 0) {
    ++pass;
    std::fill(claim_pos.begin(), claim_pos.end(), kNoClaim);
    std::size_t next_count = 0;

    for (std::size_t i = 0; i < pending_count; ++i) {
      const std::uint32_t p = cur[i];
      const std::span<const double> row = view.row(p);
      std::size_t* const tied = tied_pool.data() + static_cast<std::size_t>(p) * m;
      if (stale[p] != 0) {
        HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, m);
        HCSCHED_COUNT(obs::Counter::kFastpathRescores);
#if HCSCHED_TRACE
        ++rescores;
#endif
        // One fused vectorized pass: exact minimum with its first attaining
        // slot, minimum over the rest with one attaining slot, and the
        // ascending epsilon-tied candidate list. The scan's tie predicate is
        // bit-identical to ties.tied(min1, score) — see minscan.hpp.
        const minscan::SufferageScan scan = minscan::sufferage_scan(
            ready.data(), row.data(), m, ties.epsilon(), tied);
        min1[p] = scan.min1;
        min2[p] = scan.min2;
        min1_slot[p] = static_cast<std::uint32_t>(scan.min1_slot);
        min2_slot[p] = static_cast<std::uint32_t>(scan.min2_slot);
        tied_count[p] = static_cast<std::uint32_t>(scan.tied_count);
        stale[p] = 0;
      } else {
        HCSCHED_COUNT(obs::Counter::kFastpathReplays);
#if HCSCHED_TRACE
        ++replays;
#endif
      }
      // One decision per pending task per pass, exactly as the reference's
      // choose_min over the full score vector.
      const std::size_t best_slot = ties.choose_among(
          std::span<const std::size_t>(tied, tied_count[p]));
      const double best_ct = ready[best_slot] + row[best_slot];
      const double second_ct =
          m == 1 ? best_ct
                 : (best_slot == min1_slot[p] ? min2[p] : min1[p]);
      const double suff = second_ct - best_ct;

      // Claim/evict, bit-identical to the reference (exact sufferage tie
      // keeps the incumbent; evicted/rejected tasks queue in encounter
      // order).
      if (claim_pos[best_slot] == kNoClaim) {
        claim_pos[best_slot] = p;
        claim_suff[best_slot] = suff;
        claim_ct[best_slot] = best_ct;
      } else if (claim_suff[best_slot] < suff) {
        nxt[next_count++] = claim_pos[best_slot];
        claim_pos[best_slot] = p;
        claim_suff[best_slot] = suff;
        claim_ct[best_slot] = best_ct;
      } else {
        nxt[next_count++] = p;
      }
    }

    // Commit this pass's claims in ascending slot order (Figure 17 step
    // iii). claim_pos doubles as the committed-slot set for the
    // invalidation sweep below — a slot moved iff it holds a claim.
    for (std::size_t slot = 0; slot < m; ++slot) {
      const std::uint32_t p = claim_pos[slot];
      if (p == kNoClaim) continue;
      ready[slot] = schedule.assign(tasks[p], machines[slot]);
      if (trace != nullptr) {
        trace->push_back(SufferageStep{pass, tasks[p], machines[slot],
                                       claim_ct[slot], claim_suff[slot]});
      }
    }

    // Positions are original list positions, so kOriginalOrder is a plain
    // ascending sort — the same order the reference's position table yields.
    if (requeue == SufferageRequeue::kOriginalOrder) {
      std::sort(nxt, nxt + next_count);
    }

    // Invalidate survivors whose cached neighborhood saw a committed slot:
    // the tied list (usually one entry) and min2_slot probe claim_pos
    // directly instead of walking the committed set per survivor.
    for (std::size_t i = 0; i < next_count; ++i) {
      const std::uint32_t p = nxt[i];
      if (stale[p] != 0) continue;
      if (claim_pos[min2_slot[p]] != kNoClaim) {
        stale[p] = 1;
        continue;
      }
      const std::size_t* const tied =
          tied_pool.data() + static_cast<std::size_t>(p) * m;
      const std::size_t* const tied_end = tied + tied_count[p];
      for (const std::size_t* t = tied; t != tied_end; ++t) {
        if (claim_pos[*t] != kNoClaim) {
          stale[p] = 1;
          break;
        }
      }
    }

    std::swap(cur, nxt);
    pending_count = next_count;
  }

  HCSCHED_METRIC_COUNT("hcsched_fastpath_rescores_total",
                       "Fastpath phase-one full rescores", rescores);
  HCSCHED_METRIC_COUNT("hcsched_fastpath_replays_total",
                       "Fastpath phase-one cached replays", replays);
  HCSCHED_SPAN_ATTR(kernel_span, "passes", obs::JsonValue(pass));
  HCSCHED_SPAN_ATTR(kernel_span, "rescores", obs::JsonValue(rescores));
  HCSCHED_SPAN_ATTR(kernel_span, "replays", obs::JsonValue(replays));
  return schedule;
}

}  // namespace hcsched::heuristics::fastpath
