// The Switching Algorithm kernel (see fastpath.hpp for the switch surface
// and docs/FASTPATH.md for the full equivalence argument).
//
// The reference recomputes min(ready) and max(ready) with full scans before
// every task to form the balance index. One mapping moves exactly one ready
// time, and never downward, so the kernel maintains both bounds
// incrementally: the maximum absorbs each new finish time directly, and the
// minimum is rescanned (vectorized, minscan.hpp) only when the loaded slot
// was holding it. MET rounds score tasks straight off the contiguous
// EtcView row — zero-copy, since the row is a verbatim cell copy and
// choose_min only reads — while MCT rounds fill one reused score buffer
// with the identical ready+ETC arithmetic. Either way choose_min sees
// element-for-element the vector the reference builds, preserving
// decision/tie-event counts and RNG/script consumption.
#include <algorithm>
#include <optional>
#include <span>

#include "core/check.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/fastpath/minscan.hpp"
#include "heuristics/fastpath/reuse.hpp"
#include "heuristics/fastpath/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace hcsched::heuristics::fastpath {

Schedule swa_fast(const Problem& problem, TieBreaker& ties, double low,
                  double high, std::vector<SwaStep>* trace) {
  Schedule schedule(problem);
  const std::size_t n = problem.num_tasks();
  const std::size_t m = problem.num_machines();
  if (n == 0) return schedule;
  HCSCHED_PRECONDITION(m > 0, "swa_fast: problem with ", n,
                       " tasks but no machines");

  HCSCHED_SPAN(kernel_span, "fastpath.swa");
  HCSCHED_SPAN_ATTR(kernel_span, "tasks", obs::JsonValue(n));
  HCSCHED_SPAN_ATTR(kernel_span, "machines", obs::JsonValue(m));

  Workspace& ws = thread_workspace();
  const EtcView& view = acquire_view(problem, ws.scratch_view);

  ws.doubles.reset(2 * m);
  const std::span<double> ready = ws.doubles.take(m);
  const std::span<double> scores = ws.doubles.take(m);
  std::copy(problem.initial_ready_times().begin(),
            problem.initial_ready_times().end(), ready.begin());

  double lo = minscan::min_value(ready.data(), m);
  double hi = minscan::max_value(ready.data(), m);

  const std::vector<TaskId>& tasks = problem.tasks();
  const std::vector<MachineId>& machines = problem.machines();
  SwaMode mode = SwaMode::kMct;  // Figure 13 step 2: first task uses MCT.
  bool first = true;
  for (std::size_t p = 0; p < n; ++p) {
    const std::span<const double> row = view.row(p);
    std::optional<double> bi;
    if (!first) {
      // All-zero ready times only occur before any mapping; ETCs are
      // positive, so hi > 0 here. Guard anyway (zero-ETC degenerate input).
      bi = hi > 0.0 ? lo / hi : 0.0;
      if (*bi > high) {
        mode = SwaMode::kMet;
      } else if (*bi < low) {
        mode = SwaMode::kMct;
      }
    }
    std::size_t slot;
    if (mode == SwaMode::kMct) {
      for (std::size_t s = 0; s < m; ++s) scores[s] = ready[s] + row[s];
      HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, m);
      slot = ties.choose_min(scores);
    } else {
      slot = ties.choose_min(row);
    }
    const double old_ready = ready[slot];
    const double finish = schedule.assign(tasks[p], machines[slot]);
    ready[slot] = finish;
    hi = std::max(hi, finish);
    // Only the loaded slot moved, and only upward: the minimum survives
    // unless that slot was (an) attainer of it.
    if (old_ready == lo) lo = minscan::min_value(ready.data(), m);
    if (trace != nullptr) {
      trace->push_back(SwaStep{tasks[p], machines[slot], finish, bi, mode});
    }
    first = false;
  }
  return schedule;
}

}  // namespace hcsched::heuristics::fastpath
