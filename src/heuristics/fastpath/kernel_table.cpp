// The fastpath dispatch table (fastpath.hpp). Each row pairs a kernel with
// its reference oracle under the heuristic's default knobs — the adapters
// the differential suite, the fuzzer and the bench enumerate. Knob values
// are taken from default-constructed heuristics so they stay single-sourced
// with the registry's canonical instances.
#include "heuristics/fastpath/fastpath.hpp"

#include "core/check.hpp"
#include "heuristics/minmin.hpp"

namespace hcsched::heuristics::fastpath {

namespace {

Schedule minmin_reference(const Problem& problem, TieBreaker& ties) {
  return detail::two_phase_greedy_reference(problem, ties,
                                            /*prefer_largest=*/false);
}

Schedule minmin_fast(const Problem& problem, TieBreaker& ties) {
  return two_phase_greedy_fast(problem, ties, /*prefer_largest=*/false);
}

Schedule maxmin_reference(const Problem& problem, TieBreaker& ties) {
  return detail::two_phase_greedy_reference(problem, ties,
                                            /*prefer_largest=*/true);
}

Schedule maxmin_fast(const Problem& problem, TieBreaker& ties) {
  return two_phase_greedy_fast(problem, ties, /*prefer_largest=*/true);
}

Schedule sufferage_reference_default(const Problem& problem,
                                     TieBreaker& ties) {
  const Sufferage sufferage;
  return detail::sufferage_reference(problem, ties, sufferage.requeue(),
                                     nullptr);
}

Schedule sufferage_fast_default(const Problem& problem, TieBreaker& ties) {
  const Sufferage sufferage;
  return sufferage_fast(problem, ties, sufferage.requeue(), nullptr);
}

Schedule kpb_reference_default(const Problem& problem, TieBreaker& ties) {
  const Kpb kpb;
  return detail::kpb_reference(problem, ties,
                               kpb.subset_size(problem.num_machines()),
                               nullptr);
}

Schedule kpb_fast_default(const Problem& problem, TieBreaker& ties) {
  const Kpb kpb;
  return kpb_fast(problem, ties, kpb.subset_size(problem.num_machines()),
                  nullptr);
}

Schedule swa_reference_default(const Problem& problem, TieBreaker& ties) {
  const Swa swa;
  return detail::swa_reference(problem, ties, swa.low_threshold(),
                               swa.high_threshold(), nullptr);
}

Schedule swa_fast_default(const Problem& problem, TieBreaker& ties) {
  const Swa swa;
  return swa_fast(problem, ties, swa.low_threshold(), swa.high_threshold(),
                  nullptr);
}

constexpr KernelInfo kTable[] = {
    {Kernel::kMinMin, "Min-Min", &minmin_reference, &minmin_fast},
    {Kernel::kMaxMin, "Max-Min", &maxmin_reference, &maxmin_fast},
    {Kernel::kSufferage, "Sufferage", &sufferage_reference_default,
     &sufferage_fast_default},
    {Kernel::kKpb, "KPB", &kpb_reference_default, &kpb_fast_default},
    {Kernel::kSwa, "SWA", &swa_reference_default, &swa_fast_default},
};

}  // namespace

std::span<const KernelInfo> kernel_table() noexcept { return kTable; }

const KernelInfo* find_kernel(Kernel kernel) noexcept {
  for (const KernelInfo& info : kTable) {
    if (info.kernel == kernel) return &info;
  }
  HCSCHED_UNREACHABLE("kernel ", static_cast<int>(kernel),
                      " missing from the dispatch table");
}

}  // namespace hcsched::heuristics::fastpath
