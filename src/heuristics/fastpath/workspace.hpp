// Per-thread kernel workspace: the typed bump pools (arena.hpp) plus a
// capacity-reusing scratch EtcView, one instance per thread.
//
// A kernel invocation is one trial's worth of per-task state; the workspace
// is what batches trials. Each kernel begins by reset()-ing the pools to
// the trial's exact element counts and carving its structure-of-arrays
// slices from them; on the second and every later trial of a study cell the
// backing vectors already have the capacity, so steady-state kernel
// execution performs zero heap allocations (the TieBreaker's own resolve
// buffer excepted — both paths share that cost). Thread-locality makes the
// study driver's worker pool safe with no locks and no false sharing.
#pragma once

#include <cstdint>

#include "heuristics/fastpath/arena.hpp"
#include "heuristics/fastpath/etc_view.hpp"

namespace hcsched::heuristics::fastpath {

struct Workspace {
  BumpPool<double> doubles;
  BumpPool<std::uint32_t> indices;
  BumpPool<std::size_t> positions;
  BumpPool<unsigned char> flags;
  /// Local gather target when no iterative reuse view is active.
  EtcView scratch_view;
};

/// This thread's workspace (thread_local, created on first use).
Workspace& thread_workspace() noexcept;

}  // namespace hcsched::heuristics::fastpath
