// Incremental state carried across the iterative technique's iterations.
//
// IterativeMinimizer re-runs the heuristic after removing the makespan
// machine; the heuristic's input shrinks by exactly one machine column and
// exactly the rows of the tasks that machine held, with every surviving
// cell unchanged. IterativeReuse exploits that: it owns the EtcView of the
// current iteration's problem and, on each removal, compacts it in place
// (EtcView::compact) instead of re-gathering T x M cells from the matrix —
// plus the KPB per-task machine rankings, which survive slot removal by
// order-preserving compaction (docs/FASTPATH.md "Incremental iteration").
//
// Wiring is deliberately loose: the minimizer installs a thread-local
// pointer (ScopedReuse) and keeps calling Heuristic::map() — so the NVI
// instrumentation and fault-injection sites are untouched — while the
// kernels opportunistically pick the view up through active_reuse(), which
// validates that the problem being mapped is exactly the one the view
// mirrors (same matrix, same task list, same machine list). Any mismatch —
// a Segmented sub-problem, a nested study, a heuristic mapping something
// else — silently falls back to a local gather, so reuse is an optimization
// the equivalence guarantee never depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "heuristics/fastpath/etc_view.hpp"
#include "sched/problem.hpp"

namespace hcsched::heuristics::fastpath {

class IterativeReuse {
 public:
  explicit IterativeReuse(const sched::Problem& initial);

  /// Advance to `next`, the current problem minus one machine and the tasks
  /// mapped to it (the result of Problem::without_machine). Compacts the
  /// view and, when built, the KPB rankings in place.
  void apply_removal(const sched::Problem& next);

  /// True when `p` is exactly the problem this view mirrors.
  bool matches(const sched::Problem& p) const noexcept;

  const EtcView& view() const noexcept { return view_; }

  /// KPB ranking cache: row t_pos holds every machine slot sorted by
  /// (ETC ascending, slot ascending) for that task — built lazily by the
  /// KPB kernel, compacted by apply_removal. Flat T x M, valid only when
  /// rankings_built().
  std::vector<std::uint32_t>& rankings() noexcept { return rankings_; }
  bool rankings_built() const noexcept { return rankings_built_; }
  void mark_rankings_built() noexcept { rankings_built_ = true; }

 private:
  const sched::EtcMatrix* matrix_;
  std::vector<sched::TaskId> tasks_;
  std::vector<sched::MachineId> machines_;
  EtcView view_;
  std::vector<std::uint32_t> rankings_{};
  bool rankings_built_ = false;
};

/// Installs `reuse` as the calling thread's active context for its scope.
class ScopedReuse {
 public:
  explicit ScopedReuse(IterativeReuse& reuse) noexcept;
  ~ScopedReuse();
  ScopedReuse(const ScopedReuse&) = delete;
  ScopedReuse& operator=(const ScopedReuse&) = delete;

 private:
  IterativeReuse* previous_;
};

/// The thread's active context when it mirrors `problem`, else nullptr.
IterativeReuse* active_reuse(const sched::Problem& problem) noexcept;

/// The kernels' view source: the active context's incrementally-maintained
/// view when one matches `problem`, otherwise a fresh gather into `scratch`.
const EtcView& acquire_view(const sched::Problem& problem, EtcView& scratch);

}  // namespace hcsched::heuristics::fastpath
