#include "heuristics/fastpath/workspace.hpp"

namespace hcsched::heuristics::fastpath {

Workspace& thread_workspace() noexcept {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace hcsched::heuristics::fastpath
