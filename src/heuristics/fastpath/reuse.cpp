#include "heuristics/fastpath/reuse.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace hcsched::heuristics::fastpath {

namespace {

thread_local IterativeReuse* g_active = nullptr;

/// Positions in `before` whose elements are absent from `after` (both keep
/// relative order, as Problem::without_machine guarantees). Ascending.
template <typename Id>
std::vector<std::size_t> removed_positions(const std::vector<Id>& before,
                                           const std::vector<Id>& after) {
  std::vector<std::size_t> out;
  out.reserve(before.size() - after.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (kept < after.size() && before[i] == after[kept]) {
      ++kept;
    } else {
      out.push_back(i);
    }
  }
  HCSCHED_INVARIANT(kept == after.size(),
                    "IterativeReuse: surviving ids are not a subsequence");
  return out;
}

}  // namespace

IterativeReuse::IterativeReuse(const sched::Problem& initial)
    : matrix_(&initial.matrix()),
      tasks_(initial.tasks()),
      machines_(initial.machines()),
      view_(initial) {}

void IterativeReuse::apply_removal(const sched::Problem& next) {
  HCSCHED_PRECONDITION(&next.matrix() == matrix_,
                       "IterativeReuse: next problem uses another matrix");
  const std::vector<std::size_t> slots =
      removed_positions(machines_, next.machines());
  HCSCHED_PRECONDITION(slots.size() == 1,
                       "IterativeReuse: expected one removed machine, got ",
                       slots.size());
  const std::vector<std::size_t> rows = removed_positions(tasks_, next.tasks());
  const std::size_t slot = slots.front();
  view_.compact(slot, rows);

  if (rankings_built_) {
    // Keep each surviving row's relative order and renumber slots past the
    // removed one — exactly what a fresh (ETC, slot) sort of the shrunk row
    // would produce, since dropping one key preserves the order of the rest.
    const std::size_t old_m = machines_.size();
    const std::uint32_t gone = static_cast<std::uint32_t>(slot);
    const std::uint32_t* in = rankings_.data();
    std::uint32_t* out = rankings_.data();
    std::size_t next_drop = 0;
    for (std::size_t r = 0; r < tasks_.size(); ++r, in += old_m) {
      if (next_drop < rows.size() && rows[next_drop] == r) {
        ++next_drop;
        continue;
      }
      for (std::size_t i = 0; i < old_m; ++i) {
        const std::uint32_t s = in[i];
        if (s == gone) continue;
        *out++ = s > gone ? s - 1 : s;
      }
    }
    rankings_.resize(next.num_tasks() * next.num_machines());
  }

  tasks_ = next.tasks();
  machines_ = next.machines();
}

bool IterativeReuse::matches(const sched::Problem& p) const noexcept {
  return &p.matrix() == matrix_ && p.tasks() == tasks_ &&
         p.machines() == machines_;
}

ScopedReuse::ScopedReuse(IterativeReuse& reuse) noexcept
    : previous_(g_active) {
  g_active = &reuse;
}

ScopedReuse::~ScopedReuse() { g_active = previous_; }

IterativeReuse* active_reuse(const sched::Problem& problem) noexcept {
  IterativeReuse* r = g_active;
  return (r != nullptr && r->matches(problem)) ? r : nullptr;
}

const EtcView& acquire_view(const sched::Problem& problem, EtcView& scratch) {
  if (const IterativeReuse* r = active_reuse(problem)) return r->view();
  scratch.assign(problem);
  return scratch;
}

}  // namespace hcsched::heuristics::fastpath
