#include "heuristics/fastpath/fastpath.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace hcsched::heuristics::fastpath {

namespace {

std::atomic<Mode>& mode_flag() noexcept {
  static std::atomic<Mode> flag{Mode::kAuto};
  return flag;
}

bool env_default() noexcept {
  // Read once: the environment is a process-start default, not a live knob
  // (set_mode is the runtime override).
  static const bool enabled = env_value_enables(std::getenv("HCSCHED_FASTPATH"));
  return enabled;
}

}  // namespace

bool env_value_enables(const char* value) noexcept {
  if (value == nullptr) return true;
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  return lowered != "0" && lowered != "off" && lowered != "false" &&
         lowered != "no";
}

Mode mode() noexcept { return mode_flag().load(std::memory_order_relaxed); }

void set_mode(Mode mode) noexcept {
  mode_flag().store(mode, std::memory_order_relaxed);
}

bool enabled() noexcept {
  if (!compiled()) return false;
  switch (mode()) {
    case Mode::kForceOn:
      return true;
    case Mode::kForceOff:
      return false;
    case Mode::kAuto:
      break;
  }
  return env_default();
}

}  // namespace hcsched::heuristics::fastpath
