// Differential harness: one seeded reference-vs-kernel comparison.
//
// Shared between tests/test_fastpath_differential.cpp (the ctest suite) and
// tools/fuzz/fastpath_fuzz.cpp (the env-driven seed-sweep runner), so a CI
// widening of the fuzz range exercises byte-for-byte the same checks the
// unit suite pins. A case is fully described by a seed plus the knobs
// below; describe() prints a one-line repro. The heuristic under test is a
// row of the fastpath dispatch table (fastpath.hpp kernel_table()) — the
// suite and the fuzzer enumerate the table, so a new kernel is in the
// matrix the moment it is registered.
#pragma once

#include <cstdint>
#include <string>

#include "etc/consistency.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "rng/tie_break.hpp"

namespace hcsched::heuristics::fastpath {

struct DifferentialCase {
  std::uint64_t seed = 1;
  std::size_t tasks = 16;
  std::size_t machines = 4;
  etc::Consistency consistency = etc::Consistency::kInconsistent;
  rng::TiePolicy policy = rng::TiePolicy::kDeterministic;
  Kernel kernel = Kernel::kMinMin;  ///< dispatch-table row under test
  /// Map a task/machine subset with nonzero initial ready times (derived
  /// deterministically from the seed) instead of the full problem.
  bool subset = false;
  /// Compare full IterativeMinimizer::run outcomes (every iteration's
  /// mapping across cut points, fastpath off vs on) instead of one mapping.
  bool iterative = false;
  double mean_task_time = 100.0;
  double v_task = 0.6;
  double v_machine = 0.6;
};

struct DifferentialOutcome {
  bool equivalent = false;
  /// Empty when equivalent; otherwise the first divergence found.
  std::string divergence{};
  /// etc_cell_evaluations each path charged (0 when HCSCHED_TRACE is off or
  /// when other threads are concurrently counting; also 0 for iterative
  /// cases, where the NVI instrumentation charges both paths).
  std::uint64_t reference_cell_evals = 0;
  std::uint64_t fastpath_cell_evals = 0;
};

/// Generates the case's CVB matrix and compares the reference loop against
/// the kernel under identically-seeded TieBreakers: assignment sequences
/// (task, machine, start, finish — exact doubles), completion-time vectors
/// by slot, and the TieBreakers' decision/tie-event counts. Iterative cases
/// run the whole minimizer under ScopedMode off/on and additionally compare
/// iteration counts, every iteration's mapping, the per-iteration makespan
/// machines, and the final finishing-time table.
DifferentialOutcome run_differential_case(const DifferentialCase& c);

/// One-line repro description, e.g.
/// "seed=7 t=24 m=6 consistency=semi policy=random heuristic=Sufferage".
std::string describe(const DifferentialCase& c);

}  // namespace hcsched::heuristics::fastpath
