// Differential harness: one seeded reference-vs-kernel comparison.
//
// Shared between tests/test_fastpath_differential.cpp (the ctest suite) and
// tools/fuzz/fastpath_fuzz.cpp (the env-driven seed-sweep runner), so a CI
// widening of the fuzz range exercises byte-for-byte the same checks the
// unit suite pins. A case is fully described by a seed plus the knobs
// below; describe() prints a one-line repro.
#pragma once

#include <cstdint>
#include <string>

#include "etc/consistency.hpp"
#include "rng/tie_break.hpp"

namespace hcsched::heuristics::fastpath {

struct DifferentialCase {
  std::uint64_t seed = 1;
  std::size_t tasks = 16;
  std::size_t machines = 4;
  etc::Consistency consistency = etc::Consistency::kInconsistent;
  rng::TiePolicy policy = rng::TiePolicy::kDeterministic;
  bool prefer_largest = false;  ///< false = Min-Min, true = Max-Min
  /// Map a task/machine subset with nonzero initial ready times (derived
  /// deterministically from the seed) instead of the full problem.
  bool subset = false;
  double mean_task_time = 100.0;
  double v_task = 0.6;
  double v_machine = 0.6;
};

struct DifferentialOutcome {
  bool equivalent = false;
  /// Empty when equivalent; otherwise the first divergence found.
  std::string divergence{};
  /// etc_cell_evaluations each path charged (0 when HCSCHED_TRACE is off or
  /// when other threads are concurrently counting).
  std::uint64_t reference_cell_evals = 0;
  std::uint64_t fastpath_cell_evals = 0;
};

/// Generates the case's CVB matrix, runs the reference loop and the kernel
/// with identically-seeded TieBreakers, and compares: assignment sequences
/// (task, machine, start, finish — exact doubles), completion-time vectors
/// by slot, and the TieBreakers' decision/tie-event counts.
DifferentialOutcome run_differential_case(const DifferentialCase& c);

/// One-line repro description, e.g.
/// "seed=7 t=24 m=6 consistency=semi policy=random heuristic=Max-Min".
std::string describe(const DifferentialCase& c);

}  // namespace hcsched::heuristics::fastpath
