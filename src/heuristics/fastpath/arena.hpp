// Bump-pool and small-vector building blocks for the fastpath kernels'
// per-trial state (idiom after LLVM's BumpPtrAllocator / SmallVector; see
// docs/FASTPATH.md "Batching and allocation").
//
// The kernels lay their per-task state out as structure-of-arrays slices
// carved from typed bump pools: one reset() per kernel invocation sizes the
// pool to the trial's exact need, then take() hands out contiguous
// sub-spans. The backing vector keeps its capacity across invocations, so a
// study cell's 25+ trials allocate at steady state exactly zero times —
// that, not the first trial, is what amortizes ETC memory traffic. Pools
// are restricted to trivially-copyable element types: slices are handed out
// zero-initialized, never destructed, and may be resliced freely.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/check.hpp"

namespace hcsched::heuristics::fastpath {

template <typename T>
class BumpPool {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "BumpPool slices are never constructed or destructed");

 public:
  /// Restart the pool with room for exactly `total` elements, all
  /// zero-initialized. Capacity is retained across resets.
  void reset(std::size_t total) {
    storage_.clear();
    storage_.resize(total);
    used_ = 0;
  }

  /// The next `n` elements. Spans stay valid until the next reset().
  std::span<T> take(std::size_t n) {
    HCSCHED_INVARIANT(used_ + n <= storage_.size(),
                      "BumpPool over-allocated: ", used_ + n, " of ",
                      storage_.size());
    std::span<T> out(storage_.data() + used_, n);
    used_ += n;
    return out;
  }

 private:
  std::vector<T> storage_{};
  std::size_t used_ = 0;
};

/// Fixed inline storage for the first `N` elements, heap beyond — for the
/// short, hot lists (a pass's updated machine slots, a round's phase-two
/// candidates) that are almost always tiny but occasionally spill.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVec is for trivially-copyable elements");

 public:
  SmallVec() = default;
  ~SmallVec() { delete[] heap_; }
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  void clear() noexcept { size_ = 0; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    data_[size_++] = value;
  }

  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  T operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<const T> as_span() const noexcept {
    return std::span<const T>(data_, size_);
  }

 private:
  void grow() {
    const std::size_t next = capacity_ * 2;
    T* wide = new T[next];
    std::memcpy(wide, data_, size_ * sizeof(T));
    delete[] heap_;
    heap_ = wide;
    data_ = wide;
    capacity_ = next;
  }

  T inline_[N] = {};
  T* data_ = inline_;
  T* heap_ = nullptr;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace hcsched::heuristics::fastpath
