// The incremental two-phase greedy kernel (see fastpath.hpp for the switch
// surface and docs/FASTPATH.md for the full equivalence argument).
//
// Invalidation invariant: a round changes exactly one ready time, and ready
// times never decrease. For a surviving task whose epsilon-tied best set
// did NOT contain the updated slot, every tied candidate's completion time
// is unchanged and the updated slot's score only moved further above the
// minimum, so the task's candidate set — and therefore the TieBreaker's
// decision distribution — is bit-identical to a full rescore. Such tasks
// only *replay* their decision through TieBreaker::choose_among, which
// performs the same bookkeeping (one decision, one tie event iff the set
// has >1 candidates, one RNG draw / script entry iff a tie event) as the
// reference's choose_min over the full score vector. Tasks whose tied set
// contained the updated slot are rescored from scratch: the minimum may
// migrate, and previously-out candidates within epsilon of the *new*
// minimum may enter the set.
//
// Per-task state lives in structure-of-arrays slices from the thread
// workspace's bump pools (workspace.hpp): zero steady-state allocations
// across a study cell's trials, and the rescore is a vectorized fused
// min-scan (minscan.hpp) over a contiguous EtcView row.
#include <algorithm>
#include <span>

#include "core/check.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/fastpath/minscan.hpp"
#include "heuristics/fastpath/reuse.hpp"
#include "heuristics/fastpath/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hcsched::heuristics::fastpath {

Schedule two_phase_greedy_fast(const Problem& problem, TieBreaker& ties,
                               bool prefer_largest) {
  Schedule schedule(problem);
  const std::size_t n = problem.num_tasks();
  const std::size_t m = problem.num_machines();
  if (n == 0) return schedule;
  HCSCHED_PRECONDITION(m > 0, "two_phase_greedy_fast: problem with ", n,
                       " tasks but no machines");

  // One span per kernel invocation with the rescore/replay split as
  // attributes — per-decision spans would dwarf the work they measure.
  HCSCHED_SPAN(kernel_span, "fastpath.two_phase");
  HCSCHED_SPAN_ATTR(kernel_span, "tasks", obs::JsonValue(n));
  HCSCHED_SPAN_ATTR(kernel_span, "machines", obs::JsonValue(m));
  HCSCHED_SPAN_ATTR(kernel_span, "prefer_largest",
                    obs::JsonValue(prefer_largest));
#if HCSCHED_TRACE
  std::uint64_t rescores = 0;
  std::uint64_t replays = 0;
#endif

  Workspace& ws = thread_workspace();
  const EtcView& view = acquire_view(problem, ws.scratch_view);

  // Structure-of-arrays per-task state: the cached phase-one decision is a
  // best slot, its completion time, and the epsilon-tied candidate list
  // (ascending slots — exactly what choose_min would build from the full
  // score vector), stored as a fixed-stride slice of one flat pool.
  ws.doubles.reset(m + n);
  ws.positions.reset(n * m);
  ws.indices.reset(2 * n);
  ws.flags.reset(2 * n);
  const std::span<double> ready = ws.doubles.take(m);
  const std::span<double> best_ct = ws.doubles.take(n);
  const std::span<std::size_t> tied_pool = ws.positions.take(n * m);
  const std::span<std::uint32_t> best_slot = ws.indices.take(n);
  const std::span<std::uint32_t> tied_count = ws.indices.take(n);
  const std::span<unsigned char> alive = ws.flags.take(n);
  const std::span<unsigned char> stale = ws.flags.take(n);

  std::copy(problem.initial_ready_times().begin(),
            problem.initial_ready_times().end(), ready.begin());
  std::fill(alive.begin(), alive.end(), static_cast<unsigned char>(1));
  // Round 0: everything needs a full score.
  std::fill(stale.begin(), stale.end(), static_cast<unsigned char>(1));
  SmallVec<std::size_t, 8> round_tied;

  std::size_t remaining = n;
  while (remaining > 0) {
    // Phase 1: one TieBreaker decision per unmapped task, in list order,
    // exactly as the reference — rescoring only the stale tasks.
    for (std::size_t p = 0; p < n; ++p) {
      if (alive[p] == 0) continue;
      const std::span<const double> etc_row = view.row(p);
      std::size_t* const tied = tied_pool.data() + p * m;
      if (stale[p] != 0) {
        HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, m);
        HCSCHED_COUNT(obs::Counter::kFastpathRescores);
#if HCSCHED_TRACE
        ++rescores;
#endif
        const double best =
            minscan::min_completion(ready.data(), etc_row.data(), m);
        std::size_t tcount = 0;
        for (std::size_t slot = 0; slot < m; ++slot) {
          if (ties.tied(best, ready[slot] + etc_row[slot])) {
            tied[tcount++] = slot;
          }
        }
        tied_count[p] = static_cast<std::uint32_t>(tcount);
        stale[p] = 0;
      } else {
        HCSCHED_COUNT(obs::Counter::kFastpathReplays);
#if HCSCHED_TRACE
        ++replays;
#endif
      }
      // Re-drawn every round even from cache: under TiePolicy::kRandom the
      // reference re-rolls tied candidates each round, and the decision /
      // tie-event counts must match under every policy.
      const std::size_t chosen = ties.choose_among(
          std::span<const std::size_t>(tied, tied_count[p]));
      best_slot[p] = static_cast<std::uint32_t>(chosen);
      best_ct[p] = ready[chosen] + etc_row[chosen];
    }

    // Phase 2: pick the task with the minimum (Min-Min) or maximum
    // (Max-Min) phase-one completion time. Positions ascend in original
    // list order — the same order the reference's erase()-maintained list
    // presents to choose_min/choose_max — so the candidate list passed to
    // the TieBreaker corresponds element-for-element.
    double target = 0.0;
    bool first = true;
    for (std::size_t p = 0; p < n; ++p) {
      if (alive[p] == 0) continue;
      const double ct = best_ct[p];
      if (first) {
        target = ct;
        first = false;
      } else {
        target = prefer_largest ? std::max(target, ct) : std::min(target, ct);
      }
    }
    round_tied.clear();
    for (std::size_t p = 0; p < n; ++p) {
      if (alive[p] != 0 && ties.tied(target, best_ct[p])) {
        round_tied.push_back(p);
      }
    }
    const std::size_t pick = ties.choose_among(round_tied.as_span());
    const std::size_t slot = best_slot[pick];
    ready[slot] = schedule.assign(problem.tasks()[pick],
                                  problem.machines()[slot]);
    alive[pick] = 0;
    --remaining;

    // Invalidate the survivors whose cached candidate set involved the
    // updated slot; everyone else replays next round. The tied sets are
    // almost always singletons, so this sweep is O(remaining).
    for (std::size_t p = 0; p < n; ++p) {
      if (alive[p] == 0 || stale[p] != 0) continue;
      const std::size_t* const tied = tied_pool.data() + p * m;
      const std::size_t* const tied_end = tied + tied_count[p];
      if (std::find(tied, tied_end, slot) != tied_end) stale[p] = 1;
    }
  }
  HCSCHED_METRIC_COUNT("hcsched_fastpath_rescores_total",
                       "Fastpath phase-one full rescores", rescores);
  HCSCHED_METRIC_COUNT("hcsched_fastpath_replays_total",
                       "Fastpath phase-one cached replays", replays);
  HCSCHED_SPAN_ATTR(kernel_span, "rescores", obs::JsonValue(rescores));
  HCSCHED_SPAN_ATTR(kernel_span, "replays", obs::JsonValue(replays));
  return schedule;
}

}  // namespace hcsched::heuristics::fastpath
