// The incremental two-phase greedy kernel (see fastpath.hpp for the switch
// surface and docs/FASTPATH.md for the full equivalence argument).
//
// Invalidation invariant: a round changes exactly one ready time, and ready
// times never decrease. For a surviving task whose epsilon-tied best set
// did NOT contain the updated slot, every tied candidate's completion time
// is unchanged and the updated slot's score only moved further above the
// minimum, so the task's candidate set — and therefore the TieBreaker's
// decision distribution — is bit-identical to a full rescore. Such tasks
// only *replay* their decision through TieBreaker::choose_among, which
// performs the same bookkeeping (one decision, one tie event iff the set
// has >1 candidates, one RNG draw / script entry iff a tie event) as the
// reference's choose_min over the full score vector. Tasks whose tied set
// contained the updated slot are rescored from scratch: the minimum may
// migrate, and previously-out candidates within epsilon of the *new*
// minimum may enter the set.
#include <algorithm>
#include <span>
#include <vector>

#include "core/check.hpp"
#include "heuristics/fastpath/etc_view.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hcsched::heuristics::fastpath {

namespace {

/// Cached phase-one state of one unmapped task. `tied` lists the machine
/// slots within the TieBreaker's epsilon of `min_ct`, ascending — exactly
/// the candidate list choose_min would build from the full score vector.
struct TaskState {
  double min_ct = 0.0;
  std::size_t best_slot = 0;
  double best_ct = 0.0;
  std::vector<std::size_t> tied{};
};

}  // namespace

Schedule two_phase_greedy_fast(const Problem& problem, TieBreaker& ties,
                               bool prefer_largest) {
  Schedule schedule(problem);
  const std::size_t n = problem.num_tasks();
  const std::size_t m = problem.num_machines();
  if (n == 0) return schedule;
  HCSCHED_PRECONDITION(m > 0, "two_phase_greedy_fast: problem with ", n,
                       " tasks but no machines");

  // One span per kernel invocation with the rescore/replay split as
  // attributes — per-decision spans would dwarf the work they measure.
  HCSCHED_SPAN(kernel_span, "fastpath.two_phase");
  HCSCHED_SPAN_ATTR(kernel_span, "tasks", obs::JsonValue(n));
  HCSCHED_SPAN_ATTR(kernel_span, "machines", obs::JsonValue(m));
  HCSCHED_SPAN_ATTR(kernel_span, "prefer_largest",
                    obs::JsonValue(prefer_largest));
#if HCSCHED_TRACE
  std::uint64_t rescores = 0;
  std::uint64_t replays = 0;
#endif

  const EtcView view(problem);
  std::vector<double> ready = problem.initial_ready_times();

  std::vector<TaskState> state(n);
  std::vector<char> alive(n, 1);
  std::vector<char> stale(n, 1);  // round 0: everything needs a full score
  std::vector<std::size_t> round_tied;
  round_tied.reserve(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    // Phase 1: one TieBreaker decision per unmapped task, in list order,
    // exactly as the reference — rescoring only the stale tasks.
    for (std::size_t p = 0; p < n; ++p) {
      if (!alive[p]) continue;
      TaskState& ts = state[p];
      const std::span<const double> etc_row = view.row(p);
      if (stale[p]) {
        HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, m);
        HCSCHED_COUNT(obs::Counter::kFastpathRescores);
#if HCSCHED_TRACE
        ++rescores;
#endif
        double best = ready[0] + etc_row[0];
        for (std::size_t slot = 1; slot < m; ++slot) {
          best = std::min(best, ready[slot] + etc_row[slot]);
        }
        ts.min_ct = best;
        ts.tied.clear();
        for (std::size_t slot = 0; slot < m; ++slot) {
          if (ties.tied(best, ready[slot] + etc_row[slot])) {
            ts.tied.push_back(slot);
          }
        }
        stale[p] = 0;
      } else {
        HCSCHED_COUNT(obs::Counter::kFastpathReplays);
#if HCSCHED_TRACE
        ++replays;
#endif
      }
      // Re-drawn every round even from cache: under TiePolicy::kRandom the
      // reference re-rolls tied candidates each round, and the decision /
      // tie-event counts must match under every policy.
      ts.best_slot = ties.choose_among(ts.tied);
      ts.best_ct = ready[ts.best_slot] + etc_row[ts.best_slot];
    }

    // Phase 2: pick the task with the minimum (Min-Min) or maximum
    // (Max-Min) phase-one completion time. Positions ascend in original
    // list order — the same order the reference's erase()-maintained list
    // presents to choose_min/choose_max — so the candidate list passed to
    // the TieBreaker corresponds element-for-element.
    double target = 0.0;
    bool first = true;
    for (std::size_t p = 0; p < n; ++p) {
      if (!alive[p]) continue;
      const double ct = state[p].best_ct;
      if (first) {
        target = ct;
        first = false;
      } else {
        target = prefer_largest ? std::max(target, ct) : std::min(target, ct);
      }
    }
    round_tied.clear();
    for (std::size_t p = 0; p < n; ++p) {
      if (alive[p] && ties.tied(target, state[p].best_ct)) {
        round_tied.push_back(p);
      }
    }
    const std::size_t pick = ties.choose_among(round_tied);
    const std::size_t slot = state[pick].best_slot;
    ready[slot] = schedule.assign(problem.tasks()[pick],
                                  problem.machines()[slot]);
    alive[pick] = 0;
    --remaining;

    // Invalidate the survivors whose cached candidate set involved the
    // updated slot; everyone else replays next round. The tied sets are
    // almost always singletons, so this sweep is O(remaining).
    for (std::size_t p = 0; p < n; ++p) {
      if (!alive[p] || stale[p]) continue;
      const std::vector<std::size_t>& tied = state[p].tied;
      if (std::find(tied.begin(), tied.end(), slot) != tied.end()) {
        stale[p] = 1;
      }
    }
  }
  HCSCHED_METRIC_COUNT("hcsched_fastpath_rescores_total",
                       "Fastpath phase-one full rescores", rescores);
  HCSCHED_METRIC_COUNT("hcsched_fastpath_replays_total",
                       "Fastpath phase-one cached replays", replays);
  HCSCHED_SPAN_ATTR(kernel_span, "rescores", obs::JsonValue(rescores));
  HCSCHED_SPAN_ATTR(kernel_span, "replays", obs::JsonValue(replays));
  return schedule;
}

}  // namespace hcsched::heuristics::fastpath
