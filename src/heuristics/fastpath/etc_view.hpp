// EtcView: the structure-of-arrays backbone of the fastpath kernels — a
// contiguously laid-out copy of the ETC cells a Problem can see.
//
// Problem::etc_at(task, slot) dereferences the machine-id vector and the
// full matrix on every call; the kernels' inner loops instead scan one flat
// buffer. Cells are stored with the machine slot as the minor (contiguous)
// dimension — row(p) is task p's completion-cost row across the problem's
// machine slots — because every rescore walks exactly that row, and the
// vectorized min-scan (minscan.hpp) wants unit stride. Values are verbatim
// copies of the matrix doubles, so arithmetic on a view row is bit-identical
// to arithmetic through Problem::etc_at.
//
// Two reuse paths keep the gather off the hot path:
//   * assign() refills an existing view in place, retaining capacity — a
//     study cell's trials share one buffer (see workspace.hpp).
//   * compact() drops one machine column and a set of task rows in place —
//     the iterative technique's machine-removal step (reuse.hpp) turns the
//     previous iteration's view into the next one without touching the
//     matrix again. Surviving cells remain verbatim copies.
#pragma once

#include <span>
#include <vector>

#include "sched/problem.hpp"

namespace hcsched::heuristics::fastpath {

class EtcView {
 public:
  EtcView() = default;

  /// Gathers the problem's tasks x machine-slots submatrix. O(T x M).
  explicit EtcView(const sched::Problem& problem) { assign(problem); }

  /// Re-gathers into the existing buffer (capacity retained).
  void assign(const sched::Problem& problem);

  /// Drops machine column `slot` and the rows of the task positions in
  /// `drop_rows` (ascending, possibly empty) in one forward pass. The
  /// result equals a fresh gather of the shrunk problem.
  void compact(std::size_t slot, std::span<const std::size_t> drop_rows);

  std::size_t num_tasks() const noexcept { return tasks_; }
  std::size_t num_slots() const noexcept { return slots_; }

  /// ETC row of the task at position `task_pos` in problem.tasks(), indexed
  /// by machine slot. Hot-path accessor: `task_pos` must be in range.
  std::span<const double> row(std::size_t task_pos) const noexcept {
    return std::span<const double>(data_).subspan(task_pos * slots_, slots_);
  }

 private:
  std::size_t tasks_ = 0;
  std::size_t slots_ = 0;
  std::vector<double> data_{};
};

}  // namespace hcsched::heuristics::fastpath
