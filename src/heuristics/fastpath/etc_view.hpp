// EtcView: a contiguously laid-out copy of the ETC cells a Problem can see.
//
// Problem::etc_at(task, slot) dereferences the machine-id vector and the
// full matrix on every call; the greedy kernel's inner loop instead scans
// one flat buffer. Cells are stored with the machine slot as the minor
// (contiguous) dimension — row(p) is task p's completion-cost row across
// the problem's machine slots — because every rescore walks exactly that
// row. Values are verbatim copies of the matrix doubles, so arithmetic on
// a view row is bit-identical to arithmetic through Problem::etc_at.
#pragma once

#include <span>
#include <vector>

#include "sched/problem.hpp"

namespace hcsched::heuristics::fastpath {

class EtcView {
 public:
  /// Gathers the problem's tasks x machine-slots submatrix. O(T x M).
  explicit EtcView(const sched::Problem& problem);

  std::size_t num_tasks() const noexcept { return tasks_; }
  std::size_t num_slots() const noexcept { return slots_; }

  /// ETC row of the task at position `task_pos` in problem.tasks(), indexed
  /// by machine slot. Hot-path accessor: `task_pos` must be in range.
  std::span<const double> row(std::size_t task_pos) const noexcept {
    return std::span<const double>(data_).subspan(task_pos * slots_, slots_);
  }

 private:
  std::size_t tasks_ = 0;
  std::size_t slots_ = 0;
  std::vector<double> data_{};
};

}  // namespace hcsched::heuristics::fastpath
