// Incremental fast-path kernel for the two-phase greedy heuristics
// (Min-Min / Max-Min, and Duplex which runs both).
//
// The reference implementation (heuristics::detail::two_phase_greedy_reference
// in minmin.cpp) rescores every unmapped task on every machine each round —
// O(rounds x tasks x machines). The kernel here exploits the fact that one
// round changes exactly one machine's ready time, and ready times only grow:
// a surviving task's phase-one decision can change ONLY if the updated
// machine slot was inside its epsilon-tied best set. All other tasks keep a
// bit-identical candidate set and merely *replay* their TieBreaker decision,
// which preserves the decision/tie-event counts and the RNG or script stream
// exactly (docs/FASTPATH.md states the invariant and the equivalence
// guarantee; tests/test_fastpath_differential.cpp enforces it).
//
// Switches, in precedence order:
//   * CMake: -DHCSCHED_FASTPATH=OFF compiles the dispatch default to the
//     reference path; the kernel itself stays built so the differential
//     suite can always compare both paths.
//   * API: set_mode(Mode::kForceOn / kForceOff) — process-wide override
//     (ScopedMode is the RAII form used by tests, benches and the study
//     driver). Not intended for concurrent flipping from multiple threads.
//   * Environment: HCSCHED_FASTPATH=0/off/false/no disables dispatch when
//     the mode is kAuto (read once, at first query).
#pragma once

#include <span>

#include "heuristics/heuristic.hpp"
#include "heuristics/kpb.hpp"
#include "heuristics/sufferage.hpp"
#include "heuristics/swa.hpp"

#ifndef HCSCHED_FASTPATH
#define HCSCHED_FASTPATH 1
#endif

namespace hcsched::heuristics::fastpath {

enum class Mode : std::uint8_t {
  kAuto,      ///< compile-time default, overridable by HCSCHED_FASTPATH env
  kForceOn,   ///< dispatch to the kernel (no-op when compiled() is false)
  kForceOff,  ///< dispatch to the reference implementation
};

/// Whether the build's dispatch default allows the fast path at all
/// (-DHCSCHED_FASTPATH). The kernel function below is compiled either way.
constexpr bool compiled() noexcept { return HCSCHED_FASTPATH != 0; }

Mode mode() noexcept;
void set_mode(Mode mode) noexcept;

/// True when detail::two_phase_greedy should dispatch to the kernel:
/// compiled() and not forced off and (forced on or the environment default).
bool enabled() noexcept;

/// Parses an HCSCHED_FASTPATH environment value: "0", "off", "false", "no"
/// (case-insensitive) disable; everything else (including null) enables.
bool env_value_enables(const char* value) noexcept;

/// RAII mode override, restoring the previous mode on scope exit.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) noexcept : previous_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(previous_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode previous_;
};

// ---------------------------------------------------------------------------
// Kernels. Every kernel produces output equivalent to its reference loop
// under every TiePolicy: identical assignments (same order), identical
// completion-time vectors, identical TieBreaker decision and tie-event
// counts, identical RNG/script consumption. Only the etc_cell_evaluations
// counter may differ (it reports the work actually done, which is the
// point). docs/FASTPATH.md carries the per-kernel equivalence arguments;
// tests/test_fastpath_differential.cpp and tools/fuzz/ enforce them.

/// Two-phase greedy (Min-Min / Max-Min, and Duplex which runs both):
/// cached phase-one decisions replayed until the updated machine slot
/// enters a task's epsilon-tied best set.
Schedule two_phase_greedy_fast(const Problem& problem, TieBreaker& ties,
                               bool prefer_largest);

/// Sufferage: cached per-task (best, second-best) completion pairs with
/// single-machine invalidation across passes.
Schedule sufferage_fast(const Problem& problem, TieBreaker& ties,
                        SufferageRequeue requeue,
                        std::vector<SufferageStep>* trace);

/// K-Percent Best: cached per-task machine rankings (reused across
/// iterative iterations) feeding a k-subset min-scan. `subset_size` is
/// Kpb::subset_size(problem.num_machines()).
Schedule kpb_fast(const Problem& problem, TieBreaker& ties,
                  std::size_t subset_size, std::vector<KpbStep>* trace);

/// Switching Algorithm: incremental min/max ready-time maintenance for the
/// balance index; MET rounds score straight off the ETC view row.
Schedule swa_fast(const Problem& problem, TieBreaker& ties, double low,
                  double high, std::vector<SwaStep>* trace);

// ---------------------------------------------------------------------------
// Dispatch table: the single source of truth for which heuristics have a
// kernel. The differential suite, the fuzzer and the bench derive their
// coverage from this table, so adding a kernel without registering it here
// cannot silently escape the equivalence matrix (and the table's canonical
// `name` ties each entry back to heuristics::make_heuristic for the
// iterative-loop differential).

enum class Kernel : std::uint8_t {
  kMinMin,
  kMaxMin,
  kSufferage,
  kKpb,
  kSwa,
};

struct KernelInfo {
  Kernel kernel;
  /// Canonical registry spelling (heuristics/registry.hpp).
  const char* name;
  /// Reference loop and kernel with the heuristic's default knobs —
  /// identically-callable adapters for differential comparison.
  Schedule (*reference)(const Problem& problem, TieBreaker& ties);
  Schedule (*fast)(const Problem& problem, TieBreaker& ties);
};

/// All fastpath-covered heuristics, in enum order.
std::span<const KernelInfo> kernel_table() noexcept;

/// Table row for `kernel`; never null.
const KernelInfo* find_kernel(Kernel kernel) noexcept;

}  // namespace hcsched::heuristics::fastpath
