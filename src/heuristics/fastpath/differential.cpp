#include "heuristics/fastpath/differential.hpp"

#include <sstream>
#include <vector>

#include "etc/cvb_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/minmin.hpp"
#include "obs/counters.hpp"
#include "rng/rng.hpp"

namespace hcsched::heuristics::fastpath {

namespace {

using sched::Problem;
using sched::Schedule;

const char* policy_name(rng::TiePolicy policy) noexcept {
  switch (policy) {
    case rng::TiePolicy::kDeterministic:
      return "det";
    case rng::TiePolicy::kRandom:
      return "random";
    case rng::TiePolicy::kScripted:
      return "scripted";
  }
  return "?";
}

/// Subset of the matrix's tasks/machines plus nonzero ready times, derived
/// deterministically from `rng` (roughly 3/4 of the tasks, 2/3 of the
/// machines, never empty).
Problem derive_subset(const etc::EtcMatrix& matrix, double mean_ready,
                      rng::Rng& rng) {
  std::vector<sched::TaskId> tasks;
  for (std::size_t t = 0; t < matrix.num_tasks(); ++t) {
    if (!rng.chance(0.25)) tasks.push_back(static_cast<sched::TaskId>(t));
  }
  if (tasks.empty()) tasks.push_back(0);
  std::vector<sched::MachineId> machines;
  for (std::size_t m = 0; m < matrix.num_machines(); ++m) {
    if (!rng.chance(1.0 / 3.0)) {
      machines.push_back(static_cast<sched::MachineId>(m));
    }
  }
  if (machines.empty()) machines.push_back(0);
  std::vector<double> ready;
  ready.reserve(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    ready.push_back(rng.uniform(0.0, mean_ready));
  }
  return Problem(matrix, std::move(tasks), std::move(machines),
                 std::move(ready));
}

/// First divergence between two schedules, or "" when identical. Compares
/// the assignment sequences exactly (order, ids and IEEE doubles) and the
/// by-slot completion-time vectors.
std::string first_divergence(const Schedule& ref, const Schedule& fast) {
  std::ostringstream out;
  const auto& ref_order = ref.assignment_order();
  const auto& fast_order = fast.assignment_order();
  if (ref_order.size() != fast_order.size()) {
    out << "assignment counts differ: reference " << ref_order.size()
        << " vs fastpath " << fast_order.size();
    return out.str();
  }
  for (std::size_t i = 0; i < ref_order.size(); ++i) {
    if (!(ref_order[i] == fast_order[i])) {
      out << "assignment " << i << " differs: reference task "
          << ref_order[i].task << "->m" << ref_order[i].machine << " ["
          << ref_order[i].start << ", " << ref_order[i].finish
          << ") vs fastpath task " << fast_order[i].task << "->m"
          << fast_order[i].machine << " [" << fast_order[i].start << ", "
          << fast_order[i].finish << ")";
      return out.str();
    }
  }
  const auto& ref_ct = ref.completion_times_by_slot();
  const auto& fast_ct = fast.completion_times_by_slot();
  for (std::size_t slot = 0; slot < ref_ct.size(); ++slot) {
    if (ref_ct[slot] != fast_ct[slot]) {
      out << "completion time of slot " << slot << " differs: reference "
          << ref_ct[slot] << " vs fastpath " << fast_ct[slot];
      return out.str();
    }
  }
  return {};
}

}  // namespace

DifferentialOutcome run_differential_case(const DifferentialCase& c) {
  rng::Rng rng(c.seed);
  etc::CvbParams params;
  params.num_tasks = c.tasks;
  params.num_machines = c.machines;
  params.mean_task_time = c.mean_task_time;
  params.v_task = c.v_task;
  params.v_machine = c.v_machine;
  const etc::EtcMatrix matrix = etc::shape_consistency(
      etc::CvbEtcGenerator(params).generate(rng), c.consistency);
  const Problem problem = c.subset
                              ? derive_subset(matrix, c.mean_task_time, rng)
                              : Problem::full(matrix);

  // Identically-seeded tie state per path: the comparison is meaningful
  // only if both paths face the exact same random stream / script.
  const std::uint64_t tie_seed = rng.next_u64();
  rng::Rng ref_rng(tie_seed);
  rng::Rng fast_rng(tie_seed);
  std::vector<std::size_t> script;
  if (c.policy == rng::TiePolicy::kScripted) {
    script.reserve(c.tasks * 4);
    for (std::size_t i = 0; i < c.tasks * 4; ++i) {
      script.push_back(static_cast<std::size_t>(rng.below(6)));
    }
  }
  auto make_ties = [&](rng::Rng& tie_rng) {
    switch (c.policy) {
      case rng::TiePolicy::kRandom:
        return rng::TieBreaker(tie_rng);
      case rng::TiePolicy::kScripted:
        return rng::TieBreaker(script);
      case rng::TiePolicy::kDeterministic:
        break;
    }
    return rng::TieBreaker();
  };
  rng::TieBreaker ref_ties = make_ties(ref_rng);
  rng::TieBreaker fast_ties = make_ties(fast_rng);

  DifferentialOutcome outcome;
#if HCSCHED_TRACE
  const auto before_ref = obs::counters::snapshot();
#endif
  const Schedule ref = heuristics::detail::two_phase_greedy_reference(
      problem, ref_ties, c.prefer_largest);
#if HCSCHED_TRACE
  const auto before_fast = obs::counters::snapshot();
#endif
  const Schedule fast =
      two_phase_greedy_fast(problem, fast_ties, c.prefer_largest);
#if HCSCHED_TRACE
  const auto after = obs::counters::snapshot();
  outcome.reference_cell_evals = before_fast.delta_since(
      before_ref)[obs::Counter::kEtcCellEvaluations];
  outcome.fastpath_cell_evals =
      after.delta_since(before_fast)[obs::Counter::kEtcCellEvaluations];
#endif

  outcome.divergence = first_divergence(ref, fast);
  if (outcome.divergence.empty() &&
      ref_ties.decisions() != fast_ties.decisions()) {
    std::ostringstream out;
    out << "TieBreaker decision counts differ: reference "
        << ref_ties.decisions() << " vs fastpath " << fast_ties.decisions();
    outcome.divergence = out.str();
  }
  if (outcome.divergence.empty() &&
      ref_ties.tie_events() != fast_ties.tie_events()) {
    std::ostringstream out;
    out << "TieBreaker tie-event counts differ: reference "
        << ref_ties.tie_events() << " vs fastpath "
        << fast_ties.tie_events();
    outcome.divergence = out.str();
  }
  outcome.equivalent = outcome.divergence.empty();
  return outcome;
}

std::string describe(const DifferentialCase& c) {
  std::ostringstream out;
  out << "seed=" << c.seed << " t=" << c.tasks << " m=" << c.machines
      << " consistency=" << etc::to_string(c.consistency)
      << " policy=" << policy_name(c.policy)
      << " heuristic=" << (c.prefer_largest ? "Max-Min" : "Min-Min")
      << (c.subset ? " subset" : "");
  return out.str();
}

}  // namespace hcsched::heuristics::fastpath
