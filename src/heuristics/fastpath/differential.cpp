#include "heuristics/fastpath/differential.hpp"

#include <sstream>
#include <vector>

// Audited upward includes: the iterative differential pins the WHOLE
// minimizer (fastpath off vs on), so this validation harness — which the
// coverage rule requires to live beside the kernels it proves — must drive
// core::IterativeMinimizer over registry-constructed heuristics. Production
// code keeps the one-way core/algo -> heuristics direction; only this
// test/fuzz-shared harness looks back up.
#include "core/iterative.hpp"       // lint:allow(layering)
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"  // lint:allow(layering)
#include "obs/counters.hpp"
#include "rng/rng.hpp"

namespace hcsched::heuristics::fastpath {

namespace {

using sched::Problem;
using sched::Schedule;

const char* policy_name(rng::TiePolicy policy) noexcept {
  switch (policy) {
    case rng::TiePolicy::kDeterministic:
      return "det";
    case rng::TiePolicy::kRandom:
      return "random";
    case rng::TiePolicy::kScripted:
      return "scripted";
  }
  return "?";
}

/// Subset of the matrix's tasks/machines plus nonzero ready times, derived
/// deterministically from `rng` (roughly 3/4 of the tasks, 2/3 of the
/// machines, never empty).
Problem derive_subset(const etc::EtcMatrix& matrix, double mean_ready,
                      rng::Rng& rng) {
  std::vector<sched::TaskId> tasks;
  for (std::size_t t = 0; t < matrix.num_tasks(); ++t) {
    if (!rng.chance(0.25)) tasks.push_back(static_cast<sched::TaskId>(t));
  }
  if (tasks.empty()) tasks.push_back(0);
  std::vector<sched::MachineId> machines;
  for (std::size_t m = 0; m < matrix.num_machines(); ++m) {
    if (!rng.chance(1.0 / 3.0)) {
      machines.push_back(static_cast<sched::MachineId>(m));
    }
  }
  if (machines.empty()) machines.push_back(0);
  std::vector<double> ready;
  ready.reserve(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    ready.push_back(rng.uniform(0.0, mean_ready));
  }
  return Problem(matrix, std::move(tasks), std::move(machines),
                 std::move(ready));
}

/// First divergence between two schedules, or "" when identical. Compares
/// the assignment sequences exactly (order, ids and IEEE doubles) and the
/// by-slot completion-time vectors.
std::string first_divergence(const Schedule& ref, const Schedule& fast) {
  std::ostringstream out;
  const auto& ref_order = ref.assignment_order();
  const auto& fast_order = fast.assignment_order();
  if (ref_order.size() != fast_order.size()) {
    out << "assignment counts differ: reference " << ref_order.size()
        << " vs fastpath " << fast_order.size();
    return out.str();
  }
  for (std::size_t i = 0; i < ref_order.size(); ++i) {
    if (!(ref_order[i] == fast_order[i])) {
      out << "assignment " << i << " differs: reference task "
          << ref_order[i].task << "->m" << ref_order[i].machine << " ["
          << ref_order[i].start << ", " << ref_order[i].finish
          << ") vs fastpath task " << fast_order[i].task << "->m"
          << fast_order[i].machine << " [" << fast_order[i].start << ", "
          << fast_order[i].finish << ")";
      return out.str();
    }
  }
  const auto& ref_ct = ref.completion_times_by_slot();
  const auto& fast_ct = fast.completion_times_by_slot();
  for (std::size_t slot = 0; slot < ref_ct.size(); ++slot) {
    if (ref_ct[slot] != fast_ct[slot]) {
      out << "completion time of slot " << slot << " differs: reference "
          << ref_ct[slot] << " vs fastpath " << fast_ct[slot];
      return out.str();
    }
  }
  return {};
}

/// Full run_iterative equivalence: iteration counts, every iteration's
/// mapping and makespan machine across cut points, and the final
/// finishing-time table. Returns "" when identical.
std::string iterative_divergence(const core::IterativeResult& ref,
                                 const core::IterativeResult& fast) {
  std::ostringstream out;
  if (ref.iterations.size() != fast.iterations.size()) {
    out << "iteration counts differ: reference " << ref.iterations.size()
        << " vs fastpath " << fast.iterations.size();
    return out.str();
  }
  for (std::size_t i = 0; i < ref.iterations.size(); ++i) {
    const core::IterationRecord& r = ref.iterations[i];
    const core::IterationRecord& f = fast.iterations[i];
    const std::string diff = first_divergence(r.schedule, f.schedule);
    if (!diff.empty()) {
      out << "iteration " << i << ": " << diff;
      return out.str();
    }
    if (r.makespan != f.makespan ||
        r.makespan_machine != f.makespan_machine) {
      out << "iteration " << i << " cut point differs: reference m"
          << r.makespan_machine << " @ " << r.makespan << " vs fastpath m"
          << f.makespan_machine << " @ " << f.makespan;
      return out.str();
    }
  }
  if (ref.final_finishing_times != fast.final_finishing_times) {
    out << "final finishing-time tables differ";
    return out.str();
  }
  return {};
}

}  // namespace

DifferentialOutcome run_differential_case(const DifferentialCase& c) {
  rng::Rng rng(c.seed);
  etc::CvbParams params;
  params.num_tasks = c.tasks;
  params.num_machines = c.machines;
  params.mean_task_time = c.mean_task_time;
  params.v_task = c.v_task;
  params.v_machine = c.v_machine;
  const etc::EtcMatrix matrix = etc::shape_consistency(
      etc::CvbEtcGenerator(params).generate(rng), c.consistency);
  const Problem problem = c.subset
                              ? derive_subset(matrix, c.mean_task_time, rng)
                              : Problem::full(matrix);

  // Identically-seeded tie state per path: the comparison is meaningful
  // only if both paths face the exact same random stream / script.
  const std::uint64_t tie_seed = rng.next_u64();
  rng::Rng ref_rng(tie_seed);
  rng::Rng fast_rng(tie_seed);
  std::vector<std::size_t> script;
  if (c.policy == rng::TiePolicy::kScripted) {
    script.reserve(c.tasks * 4);
    for (std::size_t i = 0; i < c.tasks * 4; ++i) {
      script.push_back(static_cast<std::size_t>(rng.below(6)));
    }
  }
  auto make_ties = [&](rng::Rng& tie_rng) {
    switch (c.policy) {
      case rng::TiePolicy::kRandom:
        return rng::TieBreaker(tie_rng);
      case rng::TiePolicy::kScripted:
        return rng::TieBreaker(script);
      case rng::TiePolicy::kDeterministic:
        break;
    }
    return rng::TieBreaker();
  };
  rng::TieBreaker ref_ties = make_ties(ref_rng);
  rng::TieBreaker fast_ties = make_ties(fast_rng);

  const KernelInfo& info = *find_kernel(c.kernel);
  DifferentialOutcome outcome;
  if (c.iterative) {
    // Whole-minimizer comparison: the heuristic dispatches internally, so
    // the two paths are selected by scoped mode (which also controls
    // whether the minimizer installs the incremental removal context).
    const auto heuristic = make_heuristic(info.name);
    const core::IterativeMinimizer minimizer;
    core::IterativeResult ref;
    core::IterativeResult fast;
    {
      const ScopedMode off(Mode::kForceOff);
      ref = minimizer.run(*heuristic, problem, ref_ties);
    }
    {
      const ScopedMode on(Mode::kForceOn);
      fast = minimizer.run(*heuristic, problem, fast_ties);
    }
    outcome.divergence = iterative_divergence(ref, fast);
  } else {
#if HCSCHED_TRACE
    const auto before_ref = obs::counters::snapshot();
#endif
    const Schedule ref = info.reference(problem, ref_ties);
#if HCSCHED_TRACE
    const auto before_fast = obs::counters::snapshot();
#endif
    const Schedule fast = info.fast(problem, fast_ties);
#if HCSCHED_TRACE
    const auto after = obs::counters::snapshot();
    outcome.reference_cell_evals = before_fast.delta_since(
        before_ref)[obs::Counter::kEtcCellEvaluations];
    outcome.fastpath_cell_evals =
        after.delta_since(before_fast)[obs::Counter::kEtcCellEvaluations];
#endif
    outcome.divergence = first_divergence(ref, fast);
  }

  if (outcome.divergence.empty() &&
      ref_ties.decisions() != fast_ties.decisions()) {
    std::ostringstream out;
    out << "TieBreaker decision counts differ: reference "
        << ref_ties.decisions() << " vs fastpath " << fast_ties.decisions();
    outcome.divergence = out.str();
  }
  if (outcome.divergence.empty() &&
      ref_ties.tie_events() != fast_ties.tie_events()) {
    std::ostringstream out;
    out << "TieBreaker tie-event counts differ: reference "
        << ref_ties.tie_events() << " vs fastpath "
        << fast_ties.tie_events();
    outcome.divergence = out.str();
  }
  outcome.equivalent = outcome.divergence.empty();
  return outcome;
}

std::string describe(const DifferentialCase& c) {
  std::ostringstream out;
  out << "seed=" << c.seed << " t=" << c.tasks << " m=" << c.machines
      << " consistency=" << etc::to_string(c.consistency)
      << " policy=" << policy_name(c.policy)
      << " heuristic=" << find_kernel(c.kernel)->name
      << (c.subset ? " subset" : "") << (c.iterative ? " iterative" : "");
  return out.str();
}

}  // namespace hcsched::heuristics::fastpath
