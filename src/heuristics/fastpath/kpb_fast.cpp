// The K-Percent Best kernel (see fastpath.hpp for the switch surface and
// docs/FASTPATH.md for the full equivalence argument).
//
// The reference stable-sorts every machine slot by ETC for every task —
// O(T x M log M) through Problem::etc_at's double indirection. The ranking
// it produces is fully determined by the pair key (ETC, slot): stable_sort
// over iota order breaks ETC ties toward the lower slot. The kernel sorts
// the same key explicitly over contiguous EtcView rows, and only to depth k
// (partial_sort — the first k of the unique total order is all the subset
// scan reads). Under the iterative technique the full per-task rankings are
// cached in the IterativeReuse context and survive machine removal by
// order-preserving compaction: dropping one slot and renumbering the rest
// leaves exactly the order a fresh sort of the shrunk row would produce, so
// later iterations skip the sort entirely. The subset completion scan and
// choose_min see element-for-element the vector the reference builds, which
// preserves decision/tie-event counts and RNG/script consumption.
#include <algorithm>
#include <numeric>
#include <span>

#include "core/check.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/fastpath/reuse.hpp"
#include "heuristics/fastpath/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace hcsched::heuristics::fastpath {

Schedule kpb_fast(const Problem& problem, TieBreaker& ties,
                  std::size_t subset_size, std::vector<KpbStep>* trace) {
  Schedule schedule(problem);
  const std::size_t n = problem.num_tasks();
  const std::size_t m = problem.num_machines();
  if (n == 0) return schedule;
  HCSCHED_PRECONDITION(subset_size >= 1 && subset_size <= m,
                       "kpb_fast: subset size ", subset_size, " of ", m,
                       " machines");
  const std::size_t k = subset_size;

  HCSCHED_SPAN(kernel_span, "fastpath.kpb");
  HCSCHED_SPAN_ATTR(kernel_span, "tasks", obs::JsonValue(n));
  HCSCHED_SPAN_ATTR(kernel_span, "machines", obs::JsonValue(m));
  HCSCHED_SPAN_ATTR(kernel_span, "k", obs::JsonValue(k));

  Workspace& ws = thread_workspace();
  const EtcView& view = acquire_view(problem, ws.scratch_view);

  ws.doubles.reset(m + k);
  ws.indices.reset(m);
  const std::span<double> ready = ws.doubles.take(m);
  const std::span<double> subset_ct = ws.doubles.take(k);
  const std::span<std::uint32_t> local_rank = ws.indices.take(m);
  std::copy(problem.initial_ready_times().begin(),
            problem.initial_ready_times().end(), ready.begin());

  // Ranking source: the iterative context's cache when this mapping is an
  // iteration of the minimizer, else a per-task partial sort.
  IterativeReuse* const reuse = active_reuse(problem);
  const std::uint32_t* cache = nullptr;
  if (reuse != nullptr) {
    std::vector<std::uint32_t>& rankings = reuse->rankings();
    if (!reuse->rankings_built()) {
      rankings.resize(n * m);
      for (std::size_t p = 0; p < n; ++p) {
        const std::span<const double> row = view.row(p);
        std::uint32_t* const r = rankings.data() + p * m;
        std::iota(r, r + m, std::uint32_t{0});
        std::sort(r, r + m, [&](std::uint32_t a, std::uint32_t b) {
          return row[a] < row[b] || (row[a] == row[b] && a < b);
        });
      }
      reuse->mark_rankings_built();
    }
    cache = rankings.data();
  }

  const std::vector<TaskId>& tasks = problem.tasks();
  const std::vector<MachineId>& machines = problem.machines();
  for (std::size_t p = 0; p < n; ++p) {
    const std::span<const double> row = view.row(p);
    const std::uint32_t* rank;
    if (cache != nullptr) {
      rank = cache + p * m;
    } else {
      std::iota(local_rank.begin(), local_rank.end(), std::uint32_t{0});
      // (ETC, slot) is a unique total order, so the sorted k-prefix equals
      // the reference's full stable_sort prefix.
      std::partial_sort(local_rank.begin(),
                        local_rank.begin() + static_cast<std::ptrdiff_t>(k),
                        local_rank.end(),
                        [&](std::uint32_t a, std::uint32_t b) {
                          return row[a] < row[b] || (row[a] == row[b] && a < b);
                        });
      rank = local_rank.data();
    }
    for (std::size_t i = 0; i < k; ++i) {
      subset_ct[i] = ready[rank[i]] + row[rank[i]];
    }
    HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, k);
    const std::size_t pick = ties.choose_min(subset_ct);
    const std::size_t slot = rank[pick];
    const double finish = schedule.assign(tasks[p], machines[slot]);
    ready[slot] = finish;
    if (trace != nullptr) {
      KpbStep step;
      step.task = tasks[p];
      step.machine = machines[slot];
      step.completion = finish;
      step.subset.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        step.subset.push_back(machines[rank[i]]);
      }
      std::sort(step.subset.begin(), step.subset.end());
      trace->push_back(std::move(step));
    }
  }
  return schedule;
}

}  // namespace hcsched::heuristics::fastpath
