#include "heuristics/fastpath/etc_view.hpp"

namespace hcsched::heuristics::fastpath {

EtcView::EtcView(const sched::Problem& problem)
    : tasks_(problem.num_tasks()), slots_(problem.num_machines()) {
  data_.resize(tasks_ * slots_);
  const auto& machines = problem.machines();
  double* out = data_.data();
  for (const sched::TaskId task : problem.tasks()) {
    const std::span<const double> full_row = problem.matrix().row(task);
    for (std::size_t slot = 0; slot < slots_; ++slot) {
      *out++ = full_row[static_cast<std::size_t>(machines[slot])];
    }
  }
}

}  // namespace hcsched::heuristics::fastpath
