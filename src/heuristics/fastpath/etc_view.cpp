#include "heuristics/fastpath/etc_view.hpp"

#include "core/check.hpp"

namespace hcsched::heuristics::fastpath {

void EtcView::assign(const sched::Problem& problem) {
  tasks_ = problem.num_tasks();
  slots_ = problem.num_machines();
  data_.resize(tasks_ * slots_);
  const auto& machines = problem.machines();
  double* out = data_.data();
  for (const sched::TaskId task : problem.tasks()) {
    const std::span<const double> full_row = problem.matrix().row(task);
    for (std::size_t slot = 0; slot < slots_; ++slot) {
      *out++ = full_row[static_cast<std::size_t>(machines[slot])];
    }
  }
}

void EtcView::compact(std::size_t slot,
                      std::span<const std::size_t> drop_rows) {
  HCSCHED_PRECONDITION(slot < slots_, "EtcView::compact: slot ", slot,
                       " out of ", slots_, " slots");
  HCSCHED_PRECONDITION(drop_rows.size() <= tasks_,
                       "EtcView::compact: dropping ", drop_rows.size(),
                       " of ", tasks_, " rows");
  const double* in = data_.data();
  double* out = data_.data();
  std::size_t next_drop = 0;
  for (std::size_t r = 0; r < tasks_; ++r, in += slots_) {
    if (next_drop < drop_rows.size() && drop_rows[next_drop] == r) {
      ++next_drop;
      continue;
    }
    for (std::size_t s = 0; s < slots_; ++s) {
      if (s != slot) *out++ = in[s];
    }
  }
  tasks_ -= drop_rows.size();
  slots_ -= 1;
  data_.resize(tasks_ * slots_);
}

}  // namespace hcsched::heuristics::fastpath
