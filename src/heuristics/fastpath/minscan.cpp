// Lane implementations behind minscan.hpp. See the header for the
// bit-identity argument; the scalar loops below are the semantics, the
// vector bodies are the same reduction in a different association order.
#include "heuristics/fastpath/minscan.hpp"

#include <algorithm>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HCSCHED_MINSCAN_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define HCSCHED_MINSCAN_NEON 1
#include <arm_neon.h>
#endif

namespace hcsched::heuristics::fastpath::minscan {

namespace {

double min_completion_scalar(const double* ready, const double* etc,
                             std::size_t n) noexcept {
  double best = ready[0] + etc[0];
  for (std::size_t i = 1; i < n; ++i) best = std::min(best, ready[i] + etc[i]);
  return best;
}

double min_value_scalar(const double* v, std::size_t n) noexcept {
  double best = v[0];
  for (std::size_t i = 1; i < n; ++i) best = std::min(best, v[i]);
  return best;
}

double max_value_scalar(const double* v, std::size_t n) noexcept {
  double best = v[0];
  for (std::size_t i = 1; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

// The classic strict-< best-two fold. `second` carries multiplicity (a
// duplicated minimum makes second == best) and `sslot` always differs from
// `bslot`: the first branch moves the old best slot into sslot before bslot
// advances, the second branch stores an index the first branch rejected.
SufferageScan sufferage_scan_scalar(const double* ready, const double* etc,
                                    std::size_t n, double eps,
                                    std::size_t* tied) noexcept {
  double best = ready[0] + etc[0];
  double second = std::numeric_limits<double>::infinity();
  std::size_t bslot = 0;
  std::size_t sslot = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double x = ready[i] + etc[i];
    if (x < best) {
      second = best;
      sslot = bslot;
      best = x;
      bslot = i;
    } else if (x < second) {
      second = x;
      sslot = i;
    }
  }
  std::size_t tcount = 0;
  // Gap shortcut: every other slot's rounded (score - best) is at least the
  // rounded (second - best) — subtraction is monotone — so a gap beyond
  // epsilon proves the minimum slot is the only tied candidate. n == 1
  // lands here too (second stays +inf).
  if (second - best > eps) {
    tied[tcount++] = bslot;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (ready[i] + etc[i] - best <= eps) tied[tcount++] = i;
    }
  }
  return SufferageScan{best, n == 1 ? best : second, bslot, sslot, tcount};
}

#if defined(HCSCHED_MINSCAN_AVX2)

bool have_avx2() noexcept {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

__attribute__((target("avx2"))) double min_completion_avx2(
    const double* ready, const double* etc, std::size_t n) noexcept {
  __m256d acc = _mm256_add_pd(_mm256_loadu_pd(ready), _mm256_loadu_pd(etc));
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256d ct =
        _mm256_add_pd(_mm256_loadu_pd(ready + i), _mm256_loadu_pd(etc + i));
    acc = _mm256_min_pd(acc, ct);
  }
  const __m128d pair =
      _mm_min_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double best = _mm_cvtsd_f64(_mm_min_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) best = std::min(best, ready[i] + etc[i]);
  return best;
}

__attribute__((target("avx2"))) double min_value_avx2(
    const double* v, std::size_t n) noexcept {
  __m256d acc = _mm256_loadu_pd(v);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + i));
  const __m128d pair =
      _mm_min_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double best = _mm_cvtsd_f64(_mm_min_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) best = std::min(best, v[i]);
  return best;
}

__attribute__((target("avx2"))) double max_value_avx2(
    const double* v, std::size_t n) noexcept {
  __m256d acc = _mm256_loadu_pd(v);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
  const __m128d pair =
      _mm_max_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double best = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

// Lane-parallel best-two: each lane runs the scalar strict-< fold on its
// strided sub-sequence (indices carried as exact small doubles), then a
// scalar merge recovers the global answers. The merge is exact:
//  * min1 is an IEEE min-reduction in a different association order;
//  * the global first attaining slot lives in the lane whose tracked index
//    is smallest among lanes attaining min1 (a lane's tracked index is its
//    own first attaining slot, and lane indices are congruence classes, so
//    the smallest candidate is the global first);
//  * min over slots != min1_slot decomposes per lane as "lane second if the
//    lane's min slot IS min1_slot, else lane min" — dropping exactly one
//    occurrence of the minimum at min1_slot, multiplicity preserved.
// Only requirement on the returned min2_slot is that it attains min2 and
// differs from min1_slot, which every merge candidate does by construction.
__attribute__((target("avx2"))) SufferageScan sufferage_scan_avx2(
    const double* ready, const double* etc, std::size_t n, double eps,
    std::size_t* tied) noexcept {
  // Two independent accumulator sets (8 lanes total, stride 8) so the
  // cmp -> blend dependency chains of consecutive iterations overlap.
  const double inf = std::numeric_limits<double>::infinity();
  __m256d vmin_a = _mm256_set1_pd(inf), vmin_b = _mm256_set1_pd(inf);
  __m256d vsec_a = _mm256_set1_pd(inf), vsec_b = _mm256_set1_pd(inf);
  __m256d vminidx_a = _mm256_setzero_pd(), vminidx_b = _mm256_setzero_pd();
  __m256d vsecidx_a = _mm256_setzero_pd(), vsecidx_b = _mm256_setzero_pd();
  __m256d vidx_a = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  __m256d vidx_b = _mm256_set_pd(7.0, 6.0, 5.0, 4.0);
  const __m256d vstep = _mm256_set1_pd(8.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d xa =
        _mm256_add_pd(_mm256_loadu_pd(ready + i), _mm256_loadu_pd(etc + i));
    const __m256d xb = _mm256_add_pd(_mm256_loadu_pd(ready + i + 4),
                                     _mm256_loadu_pd(etc + i + 4));
    const __m256d lt_a = _mm256_cmp_pd(xa, vmin_a, _CMP_LT_OQ);
    const __m256d lt_b = _mm256_cmp_pd(xb, vmin_b, _CMP_LT_OQ);
    // Candidate for the lane's second: the loser of the min comparison.
    const __m256d cand_a = _mm256_blendv_pd(xa, vmin_a, lt_a);
    const __m256d cand_b = _mm256_blendv_pd(xb, vmin_b, lt_b);
    const __m256d candidx_a = _mm256_blendv_pd(vidx_a, vminidx_a, lt_a);
    const __m256d candidx_b = _mm256_blendv_pd(vidx_b, vminidx_b, lt_b);
    const __m256d ltsec_a = _mm256_cmp_pd(cand_a, vsec_a, _CMP_LT_OQ);
    const __m256d ltsec_b = _mm256_cmp_pd(cand_b, vsec_b, _CMP_LT_OQ);
    vsec_a = _mm256_blendv_pd(vsec_a, cand_a, ltsec_a);
    vsec_b = _mm256_blendv_pd(vsec_b, cand_b, ltsec_b);
    vsecidx_a = _mm256_blendv_pd(vsecidx_a, candidx_a, ltsec_a);
    vsecidx_b = _mm256_blendv_pd(vsecidx_b, candidx_b, ltsec_b);
    vmin_a = _mm256_blendv_pd(vmin_a, xa, lt_a);
    vmin_b = _mm256_blendv_pd(vmin_b, xb, lt_b);
    vminidx_a = _mm256_blendv_pd(vminidx_a, vidx_a, lt_a);
    vminidx_b = _mm256_blendv_pd(vminidx_b, vidx_b, lt_b);
    vidx_a = _mm256_add_pd(vidx_a, vstep);
    vidx_b = _mm256_add_pd(vidx_b, vstep);
  }
  const std::size_t vec_end = i;
  double lane_min[8];
  double lane_min_idx[8];
  double lane_sec[8];
  double lane_sec_idx[8];
  _mm256_storeu_pd(lane_min, vmin_a);
  _mm256_storeu_pd(lane_min + 4, vmin_b);
  _mm256_storeu_pd(lane_min_idx, vminidx_a);
  _mm256_storeu_pd(lane_min_idx + 4, vminidx_b);
  _mm256_storeu_pd(lane_sec, vsec_a);
  _mm256_storeu_pd(lane_sec + 4, vsec_b);
  _mm256_storeu_pd(lane_sec_idx, vsecidx_a);
  _mm256_storeu_pd(lane_sec_idx + 4, vsecidx_b);

  double min1 = lane_min[0];
  for (int j = 1; j < 8; ++j) min1 = std::min(min1, lane_min[j]);
  for (std::size_t s = vec_end; s < n; ++s) {
    min1 = std::min(min1, ready[s] + etc[s]);
  }
  std::size_t min1_slot = n;
  for (int j = 0; j < 8; ++j) {
    if (lane_min[j] == min1) {
      min1_slot = std::min(min1_slot, static_cast<std::size_t>(lane_min_idx[j]));
    }
  }
  if (min1_slot == n) {  // the minimum lives in the scalar tail only
    for (std::size_t s = vec_end; s < n; ++s) {
      if (ready[s] + etc[s] == min1) {
        min1_slot = s;
        break;
      }
    }
  }
  // A lane whose single element is min1_slot contributes its +inf second —
  // exactly the min over the (empty) rest of that lane.
  double min2 = inf;
  std::size_t min2_slot = 0;
  for (int j = 0; j < 8; ++j) {
    const bool holds = static_cast<std::size_t>(lane_min_idx[j]) == min1_slot &&
                       lane_min[j] == min1;
    const double cv = holds ? lane_sec[j] : lane_min[j];
    const std::size_t ci = holds ? static_cast<std::size_t>(lane_sec_idx[j])
                                 : static_cast<std::size_t>(lane_min_idx[j]);
    if (cv < min2) {
      min2 = cv;
      min2_slot = ci;
    }
  }
  for (std::size_t s = vec_end; s < n; ++s) {
    if (s == min1_slot) continue;
    const double x = ready[s] + etc[s];
    if (x < min2) {
      min2 = x;
      min2_slot = s;
    }
  }

  // Epsilon-tied collection, ascending. (x - min1) <= eps is the TieBreaker
  // predicate verbatim for scores at or above the exact minimum (see the
  // header); _CMP_LE_OQ matches scalar <= on these finite values. Same gap
  // shortcut as the scalar body: a beyond-epsilon second best proves the
  // minimum slot is the only candidate, skipping the pass entirely.
  std::size_t tcount = 0;
  if (min2 - min1 > eps) {
    tied[tcount++] = min1_slot;
  } else {
    const __m256d vbest = _mm256_set1_pd(min1);
    const __m256d veps = _mm256_set1_pd(eps);
    for (i = 0; i + 4 <= n; i += 4) {
      const __m256d x =
          _mm256_add_pd(_mm256_loadu_pd(ready + i), _mm256_loadu_pd(etc + i));
      const __m256d d = _mm256_sub_pd(x, vbest);
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, veps, _CMP_LE_OQ));
      if (mask == 0) continue;
      for (int b = 0; b < 4; ++b) {
        if (((mask >> b) & 1) != 0) {
          tied[tcount++] = i + static_cast<std::size_t>(b);
        }
      }
    }
    for (; i < n; ++i) {
      if (ready[i] + etc[i] - min1 <= eps) tied[tcount++] = i;
    }
  }
  return SufferageScan{min1, min2, min1_slot, min2_slot, tcount};
}

#elif defined(HCSCHED_MINSCAN_NEON)

double min_completion_neon(const double* ready, const double* etc,
                           std::size_t n) noexcept {
  float64x2_t acc = vaddq_f64(vld1q_f64(ready), vld1q_f64(etc));
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    acc = vminq_f64(acc, vaddq_f64(vld1q_f64(ready + i), vld1q_f64(etc + i)));
  }
  double best = vminvq_f64(acc);
  for (; i < n; ++i) best = std::min(best, ready[i] + etc[i]);
  return best;
}

double min_value_neon(const double* v, std::size_t n) noexcept {
  float64x2_t acc = vld1q_f64(v);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) acc = vminq_f64(acc, vld1q_f64(v + i));
  double best = vminvq_f64(acc);
  for (; i < n; ++i) best = std::min(best, v[i]);
  return best;
}

double max_value_neon(const double* v, std::size_t n) noexcept {
  float64x2_t acc = vld1q_f64(v);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) acc = vmaxq_f64(acc, vld1q_f64(v + i));
  double best = vmaxvq_f64(acc);
  for (; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

#endif

// Below this length the lane setup costs more than the scalar loop saves.
constexpr std::size_t kVectorThreshold = 8;

}  // namespace

double min_completion(const double* ready, const double* etc,
                      std::size_t n) noexcept {
#if defined(HCSCHED_MINSCAN_AVX2)
  if (n >= kVectorThreshold && have_avx2()) {
    return min_completion_avx2(ready, etc, n);
  }
#elif defined(HCSCHED_MINSCAN_NEON)
  if (n >= kVectorThreshold) return min_completion_neon(ready, etc, n);
#endif
  return min_completion_scalar(ready, etc, n);
}

double min_value(const double* v, std::size_t n) noexcept {
#if defined(HCSCHED_MINSCAN_AVX2)
  if (n >= kVectorThreshold && have_avx2()) return min_value_avx2(v, n);
#elif defined(HCSCHED_MINSCAN_NEON)
  if (n >= kVectorThreshold) return min_value_neon(v, n);
#endif
  return min_value_scalar(v, n);
}

double max_value(const double* v, std::size_t n) noexcept {
#if defined(HCSCHED_MINSCAN_AVX2)
  if (n >= kVectorThreshold && have_avx2()) return max_value_avx2(v, n);
#elif defined(HCSCHED_MINSCAN_NEON)
  if (n >= kVectorThreshold) return max_value_neon(v, n);
#endif
  return max_value_scalar(v, n);
}

SufferageScan sufferage_scan(const double* ready, const double* etc,
                             std::size_t n, double eps,
                             std::size_t* tied) noexcept {
#if defined(HCSCHED_MINSCAN_AVX2)
  if (n >= kVectorThreshold && have_avx2()) {
    return sufferage_scan_avx2(ready, etc, n, eps, tied);
  }
#endif
  return sufferage_scan_scalar(ready, etc, n, eps, tied);
}

const char* active_lanes() noexcept {
#if defined(HCSCHED_MINSCAN_AVX2)
  return have_avx2() ? "avx2" : "scalar";
#elif defined(HCSCHED_MINSCAN_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace hcsched::heuristics::fastpath::minscan
