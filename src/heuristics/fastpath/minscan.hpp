// Portable vectorized min/max scan primitives for the fastpath kernels.
//
// Every kernel inner loop is one of three reductions over contiguous
// doubles: min of ready[i] + etc[i] (a fused completion-time scan), or a
// plain min / max over one array. IEEE min and max are associative and
// commutative for non-NaN inputs and the lane-wise additions are the exact
// same operations in any order, so any reduction tree returns the same
// value as the reference's sequential std::min fold — the vector paths are
// bit-identical, not merely close (all ETC cells are finite and positive;
// docs/FASTPATH.md states the argument, tests/test_fastpath_differential.cpp
// enforces it on exact doubles).
//
// Dispatch: AVX2 on x86-64 via function multiversioning with a cached
// __builtin_cpu_supports probe (no -mavx2 flag leaks into other TUs, and
// non-AVX2 hosts fall through safely); NEON is baseline on aarch64; every
// other target uses the scalar fallback. The fused best-two scan below has
// AVX2 and scalar bodies only — NEON hosts take the scalar path there while
// keeping the plain reductions in lanes.
#pragma once

#include <cstddef>

namespace hcsched::heuristics::fastpath::minscan {

/// min over i in [0, n) of ready[i] + etc[i]. n must be >= 1.
double min_completion(const double* ready, const double* etc,
                      std::size_t n) noexcept;

/// min / max over i in [0, n) of v[i]. n must be >= 1.
double min_value(const double* v, std::size_t n) noexcept;
double max_value(const double* v, std::size_t n) noexcept;

/// Result of sufferage_scan over the scores x[i] = ready[i] + etc[i].
struct SufferageScan {
  double min1;             ///< exact minimum score
  double min2;             ///< min over i != min1_slot (== min1 when n == 1)
  std::size_t min1_slot;   ///< FIRST slot attaining min1
  std::size_t min2_slot;   ///< some slot != min1_slot attaining min2
                           ///< (0, unused, when n == 1)
  std::size_t tied_count;  ///< slots written to `tied`
};

/// Fused single-call Sufferage row scan: exact minimum with its first
/// attaining slot, the minimum over the remaining slots (the reference's
/// "second best" with multiplicity — a duplicated minimum yields
/// min2 == min1) with one attaining slot, and the ascending list of
/// epsilon-tied slots written to `tied` (capacity n).
///
/// The tie predicate is (x[i] - min1) <= eps, bit-identical to
/// TieBreaker::tied(min1, x[i]) = |min1 - x[i]| <= eps because min1 is the
/// exact minimum (so x[i] - min1 >= 0 holds for the rounded difference too:
/// rounding is monotone and IEEE negation is exact). min1_slot is the first
/// attaining slot — the same index the reference's strict-< fold tracks —
/// while min2_slot may be ANY attaining slot: the Sufferage kernel only uses
/// it for cache invalidation, where any witness of min2 is equally sound
/// (see sufferage_fast.cpp). n must be >= 1; eps must be non-negative.
SufferageScan sufferage_scan(const double* ready, const double* etc,
                             std::size_t n, double eps,
                             std::size_t* tied) noexcept;

/// Which lane implementation min_completion/min_value dispatch to on this
/// host — "avx2", "neon" or "scalar". For spans/logs, not for correctness.
const char* active_lanes() noexcept;

}  // namespace hcsched::heuristics::fastpath::minscan
