#include "heuristics/seeded.hpp"

#include <stdexcept>
#include <utility>

#include "core/check.hpp"

namespace hcsched::heuristics {

Seeded::Seeded(std::unique_ptr<Heuristic> inner) : inner_(std::move(inner)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("Seeded: inner heuristic required");
  }
  name_ = "Seeded<";
  name_ += inner_->name();
  name_ += '>';
}

Schedule Seeded::do_map(const Problem& problem, TieBreaker& ties) const {
  return inner_->map_seeded(problem, ties, nullptr);
}

Schedule Seeded::do_map_seeded(const Problem& problem, TieBreaker& ties,
                            const Schedule* seed) const {
  Schedule fresh = inner_->map_seeded(problem, ties, seed);
  if (seed == nullptr) return fresh;
  // The incumbent wins ties — the mapping changes only when strictly
  // better, exactly the preservation argument of paper §5.
  Schedule out = fresh.makespan() < seed->makespan() ? std::move(fresh)
                                                     : Schedule(*seed);
  // §5 monotonicity guarantee: keeping the incumbent as a candidate bounds
  // the result by the seed's makespan in every case.
  HCSCHED_INVARIANT(out.makespan() <= seed->makespan(),
                    "seeded result makespan ", out.makespan(),
                    " exceeds incumbent ", seed->makespan());
  return out;
}

}  // namespace hcsched::heuristics
