// Robustness of mappings to ETC estimation error.
//
// The paper's machine model assumes the ETC matrix is exact; in practice
// ETC values come from profiling and the *actual* execution times differ.
// This module evaluates a mapping made against estimated ETCs under an
// actual-time matrix, and generates actual matrices by multiplicative
// perturbation — the standard model in the group's later robustness work
// (e.g. Ali et al., "Measuring the robustness of a resource allocation").
//
// Used by EXT-10 to ask: do the iterative technique's finishing-time
// improvements survive estimation error?
#pragma once

#include "etc/etc_matrix.hpp"
#include "rng/rng.hpp"
#include "sched/schedule.hpp"

namespace hcsched::sim {

struct PerturbationModel {
  /// Each actual time is ETC * max(floor, 1 + noise * N(0,1)).
  double noise = 0.1;
  double floor = 0.05;  ///< actual times never drop below floor * ETC
};

/// Actual-time matrix: estimated ETCs perturbed entry-wise.
etc::EtcMatrix perturb(const etc::EtcMatrix& estimated,
                       const PerturbationModel& model, rng::Rng& rng);

/// Completion time of every machine when `mapping` (built against the
/// estimated matrix) executes under `actual` times, by machine slot of the
/// mapping's problem. Initial ready times are kept.
std::vector<double> realized_completions(const sched::Schedule& mapping,
                                         const etc::EtcMatrix& actual);

/// Realized makespan under actual times.
double realized_makespan(const sched::Schedule& mapping,
                         const etc::EtcMatrix& actual);

/// Robustness radius of a mapping (Ali et al.): the smallest uniform
/// relative inflation r of the ETCs of any single machine's queue that
/// pushes the realized makespan past `tau`. Infinite when even the loaded
/// machines cannot reach tau (empty queues). Under uniform inflation of
/// machine m's queue, its completion is ready + (1 + r) * work, so
/// r_m = (tau - completion_m) / work_m and the radius is min over machines.
double robustness_radius(const sched::Schedule& mapping, double tau);

}  // namespace hcsched::sim
