#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "core/check.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/fault/fault.hpp"

#if HCSCHED_TRACE
#include <chrono>
#endif

namespace hcsched::sim {

namespace {

/// Process-wide submit sequence: the deterministic key of the
/// pool-job-start fault site. Monotone across every pool in the process so
/// a spec like pool-job-start:1:0 ("fail job #N") stays meaningful in tests.
std::atomic<std::uint64_t> g_submit_sequence{0};

}  // namespace

#if HCSCHED_TRACE
namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  const auto d = std::chrono::steady_clock::now() - since;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace
#endif

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const core::MutexLock lock(queue_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  // Pool-job-start fault site: when armed, job #seq dies before its body
  // runs (a lost worker). Injected inside the task so the error reaches the
  // caller through the future exactly like a real job failure; the sequence
  // only advances while the site is armed, so the disarmed path costs one
  // relaxed load.
  if (fault::any_armed()) {
    const std::uint64_t seq =
        g_submit_sequence.fetch_add(1, std::memory_order_relaxed);
    job = [job = std::move(job), seq] {
      fault::maybe_inject(fault::Site::kPoolJobStart, seq);
      job();
    };
  }
#if HCSCHED_TRACE
  // Wrap the job to measure queue wait (submit -> start) and run latency.
  obs::counters::add(obs::Counter::kPoolTasksSubmitted);
  const auto enqueued = std::chrono::steady_clock::now();
  std::packaged_task<void()> task([job = std::move(job), enqueued] {
    const std::uint64_t wait_ns = elapsed_ns(enqueued);
    obs::pool_wait_histogram().record_ns(wait_ns);
    HCSCHED_METRIC_OBSERVE("hcsched_pool_wait_ns",
                           "Queue wait of one pool job (submit to start)",
                           wait_ns);
    const auto started = std::chrono::steady_clock::now();
    {
      HCSCHED_SPAN(job_span, "pool.job");
      HCSCHED_SPAN_ATTR(job_span, "queue_wait_ns", obs::JsonValue(wait_ns));
      job();
    }
    const std::uint64_t run_ns = elapsed_ns(started);
    obs::pool_run_histogram().record_ns(run_ns);
    HCSCHED_METRIC_OBSERVE("hcsched_pool_run_ns",
                           "Run latency of one pool job (start to finish)",
                           run_ns);
    obs::counters::add(obs::Counter::kPoolTasksCompleted);
  });
#else
  std::packaged_task<void()> task(std::move(job));
#endif
  std::future<void> future = task.get_future();
  {
    const core::MutexLock lock(queue_mutex_);
    enqueue_locked(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::enqueue_locked(std::packaged_task<void()> task) {
  queue_.push_back(std::move(task));
#if HCSCHED_TRACE
  obs::record_queue_depth(queue_.size());
  HCSCHED_METRIC_GAUGE_SET("hcsched_pool_queue_depth",
                           "Jobs waiting in the pool queue", queue_.size());
#endif
}

bool ThreadPool::drained_locked() const { return stopping_ && queue_.empty(); }

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    const core::CancelToken* cancel) {
  if (n == 0) return;
  HCSCHED_PRECONDITION(body != nullptr, "chunk body must be callable");
  const std::size_t chunks = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(submit([&body, cancel, begin, end] {
      // A chunk that has not started when the token fires is skipped; a
      // running chunk sees the token via the thread-local install and winds
      // down cooperatively.
      if (cancel != nullptr && cancel->cancelled()) return;
      const core::ScopedCancel cancel_scope(cancel);
      body(begin, end);
    }));
    begin = end;
  }
  // The chunks partition [0, n): disjoint by construction, and together
  // they must cover the whole index range.
  HCSCHED_INVARIANT(begin == n, "chunking covered ", begin, " of ", n,
                    " indices");
  // Wait for EVERY chunk before returning, even after a failure: queued
  // chunks capture `body` by reference, so returning early would leave jobs
  // holding a dangling reference to the caller's function object (found by
  // the TSan stress suite). The first exception is rethrown after the drain.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  // Merge this worker's counter buffer into the global table after each
  // task, so studies read complete totals without waiting for pool teardown.
  for (;;) {
    std::packaged_task<void()> task;
    {
      const core::MutexLock lock(queue_mutex_);
      // Manual predicate loop (not the wait(lock, pred) overload): the
      // analysis cannot see through a predicate lambda, while an annotated
      // CondVar::wait inside the loop proves the guarded reads directly.
      while (!stopping_ && queue_.empty()) cv_.wait(queue_mutex_);
      if (drained_locked()) return;  // stopping_ and queue exhausted
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
#if HCSCHED_TRACE
    obs::counters::flush_thread();
#endif
  }
}

}  // namespace hcsched::sim
