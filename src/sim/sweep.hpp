// Parameter sweeps across the literature's heterogeneity/consistency grid.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace hcsched::sim {

struct SweepPoint {
  std::string label{};       ///< e.g. "inconsistent HiHi"
  etc::Consistency consistency = etc::Consistency::kInconsistent;
  double v_task = 0.6;
  double v_machine = 0.6;
};

/// The canonical 12-cell grid: {inconsistent, semi-consistent, consistent}
/// x {HiHi, HiLo, LoHi, LoLo} with CoVs 0.9 (high) / 0.3 (low).
std::vector<SweepPoint> standard_sweep();

struct SweepResult {
  SweepPoint point{};
  std::vector<StudyRow> rows{};
};

/// Runs the iterative study at every sweep point (same trials/seed layout).
std::vector<SweepResult> run_sweep(const StudyParams& base,
                                   const std::vector<SweepPoint>& points,
                                   ThreadPool& pool);

/// One sweep point's full study report.
struct SweepReportResult {
  SweepPoint point{};
  StudyReport report{};
};

/// run_sweep with the robustness surface: `hooks.cancel` stops between
/// trials and points, `hooks.checkpoint`/`hooks.resume` persist and replay
/// completed trials keyed by the point label (hooks.point_label is
/// overwritten per point). Points already fully resumed cost only the map
/// lookups.
std::vector<SweepReportResult> run_sweep_report(
    const StudyParams& base, const std::vector<SweepPoint>& points,
    ThreadPool& pool, const StudyHooks& hooks = {});

}  // namespace hcsched::sim
