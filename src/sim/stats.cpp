#include "sim/stats.hpp"

#include <cmath>

namespace hcsched::sim {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace hcsched::sim
