#include "sim/online.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hcsched::sim {

const char* to_string(OnlinePolicy policy) noexcept {
  switch (policy) {
    case OnlinePolicy::kMct:
      return "MCT";
    case OnlinePolicy::kMet:
      return "MET";
    case OnlinePolicy::kOlb:
      return "OLB";
    case OnlinePolicy::kKpb:
      return "KPB";
    case OnlinePolicy::kSwa:
      return "SWA";
  }
  return "?";
}

double OnlineResult::makespan() const {
  double best = 0.0;
  for (double r : final_ready) best = std::max(best, r);
  return best;
}

double OnlineResult::mean_flow_time() const {
  if (records.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : records) sum += r.finish - r.arrival;
  return sum / static_cast<double>(records.size());
}

OnlineDispatcher::OnlineDispatcher(OnlineConfig config) : config_(config) {
  if (config_.kpb_percent <= 0.0 || config_.kpb_percent > 100.0) {
    throw std::invalid_argument("OnlineDispatcher: kpb_percent in (0, 100]");
  }
  if (!(0.0 <= config_.swa_low && config_.swa_low <= config_.swa_high &&
        config_.swa_high <= 1.0)) {
    throw std::invalid_argument("OnlineDispatcher: bad SWA thresholds");
  }
}

OnlineResult OnlineDispatcher::run(const etc::EtcMatrix& matrix,
                                   const std::vector<OnlineTask>& stream,
                                   std::vector<double> initial_ready,
                                   rng::TieBreaker& ties) const {
  const std::size_t machines = matrix.num_machines();
  if (initial_ready.size() != machines) {
    throw std::invalid_argument(
        "OnlineDispatcher: initial_ready size must match machine count");
  }
  OnlineResult result;
  result.final_ready = std::move(initial_ready);
  result.records.reserve(stream.size());

  // SWA state: first dispatch uses MCT; mode switches on the BI thereafter.
  bool swa_met_mode = false;
  bool first = true;

  std::vector<double> scores(machines);
  std::vector<std::size_t> order(machines);
  double prev_arrival = -1.0;
  for (const OnlineTask& t : stream) {
    if (t.arrival < prev_arrival) {
      throw std::invalid_argument(
          "OnlineDispatcher: stream must be arrival-ordered");
    }
    prev_arrival = t.arrival;
    if (t.task < 0 ||
        static_cast<std::size_t>(t.task) >= matrix.num_tasks()) {
      throw std::out_of_range("OnlineDispatcher: task id outside matrix");
    }

    // Effective availability seen by the arriving task.
    auto avail = [&](std::size_t m) {
      return std::max(result.final_ready[m], t.arrival);
    };

    std::size_t chosen = 0;
    switch (config_.policy) {
      case OnlinePolicy::kMct: {
        for (std::size_t m = 0; m < machines; ++m) {
          scores[m] = avail(m) + matrix.at(t.task, static_cast<int>(m));
        }
        chosen = ties.choose_min(scores);
        break;
      }
      case OnlinePolicy::kMet: {
        for (std::size_t m = 0; m < machines; ++m) {
          scores[m] = matrix.at(t.task, static_cast<int>(m));
        }
        chosen = ties.choose_min(scores);
        break;
      }
      case OnlinePolicy::kOlb: {
        for (std::size_t m = 0; m < machines; ++m) scores[m] = avail(m);
        chosen = ties.choose_min(scores);
        break;
      }
      case OnlinePolicy::kKpb: {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return matrix.at(t.task, static_cast<int>(a)) <
                                  matrix.at(t.task, static_cast<int>(b));
                         });
        const auto k = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::floor(
                   static_cast<double>(machines) * config_.kpb_percent /
                   100.0)));
        std::vector<double> subset_ct(k);
        for (std::size_t i = 0; i < k; ++i) {
          subset_ct[i] =
              avail(order[i]) + matrix.at(t.task, static_cast<int>(order[i]));
        }
        chosen = order[ties.choose_min(subset_ct)];
        break;
      }
      case OnlinePolicy::kSwa: {
        if (!first) {
          const double lo = *std::min_element(result.final_ready.begin(),
                                              result.final_ready.end());
          const double hi = *std::max_element(result.final_ready.begin(),
                                              result.final_ready.end());
          const double bi = hi > 0.0 ? lo / hi : 0.0;
          if (bi > config_.swa_high) {
            swa_met_mode = true;
          } else if (bi < config_.swa_low) {
            swa_met_mode = false;
          }
        }
        for (std::size_t m = 0; m < machines; ++m) {
          scores[m] = swa_met_mode
                          ? matrix.at(t.task, static_cast<int>(m))
                          : avail(m) + matrix.at(t.task, static_cast<int>(m));
        }
        chosen = ties.choose_min(scores);
        break;
      }
    }

    OnlineDispatchRecord record;
    record.task = t.task;
    record.machine = static_cast<etc::MachineId>(chosen);
    record.arrival = t.arrival;
    record.start = avail(chosen);
    record.finish = record.start + matrix.at(t.task, static_cast<int>(chosen));
    result.final_ready[chosen] = record.finish;
    result.records.push_back(record);
    first = false;
  }
  return result;
}

std::vector<OnlineTask> make_arrival_stream(std::size_t count,
                                            double mean_gap,
                                            std::size_t num_matrix_tasks,
                                            rng::Rng& rng) {
  if (num_matrix_tasks == 0) {
    throw std::invalid_argument("make_arrival_stream: empty ETC matrix");
  }
  std::vector<OnlineTask> stream;
  stream.reserve(count);
  double clock = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Exponential inter-arrival: -mean * ln(1 - U).
    clock += -mean_gap * std::log(1.0 - rng.uniform01());
    OnlineTask t;
    t.task = static_cast<etc::TaskId>(i % num_matrix_tasks);
    t.arrival = clock;
    stream.push_back(t);
  }
  return stream;
}

}  // namespace hcsched::sim
