#include "sim/checkpoint.hpp"

#include <charconv>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/fault/fault.hpp"

namespace hcsched::sim {

namespace {

constexpr int kVersion = 1;

obs::JsonValue encode_records(const std::vector<TrialRecord>& records) {
  obs::JsonValue::Array array;
  array.reserve(records.size());
  for (const TrialRecord& record : records) {
    obs::JsonValue::Object object;
    object.reserve(9);
    object.emplace_back("heuristic", obs::JsonValue(record.heuristic));
    object.emplace_back("improved", obs::JsonValue(record.machines_improved));
    object.emplace_back("unchanged", obs::JsonValue(record.machines_unchanged));
    object.emplace_back("worsened", obs::JsonValue(record.machines_worsened));
    obs::JsonValue::Array deltas;
    deltas.reserve(record.finish_deltas.size());
    for (const double d : record.finish_deltas) {
      deltas.emplace_back(d);
    }
    object.emplace_back("finish_deltas", obs::JsonValue(std::move(deltas)));
    object.emplace_back("mean_completion_delta",
                        record.has_mean_completion_delta
                            ? obs::JsonValue(record.mean_completion_delta)
                            : obs::JsonValue(nullptr));
    object.emplace_back("makespan_increased",
                        obs::JsonValue(record.makespan_increased));
    object.emplace_back("original_makespan",
                        obs::JsonValue(record.original_makespan));
    object.emplace_back("gap_pct", record.has_gap
                                       ? obs::JsonValue(record.gap_pct)
                                       : obs::JsonValue(nullptr));
    object.emplace_back("gap_exact", obs::JsonValue(record.gap_exact));
    array.emplace_back(std::move(object));
  }
  return obs::JsonValue(std::move(array));
}

obs::JsonValue encode_quarantined(
    const std::vector<QuarantineRecord>& quarantined) {
  obs::JsonValue::Array array;
  array.reserve(quarantined.size());
  for (const QuarantineRecord& q : quarantined) {
    obs::JsonValue::Object object;
    object.reserve(3);
    object.emplace_back("heuristic", obs::JsonValue(q.heuristic));
    object.emplace_back("site", obs::JsonValue(q.site));
    object.emplace_back("error", obs::JsonValue(q.error));
    array.emplace_back(std::move(object));
  }
  return obs::JsonValue(std::move(array));
}

std::size_t as_size(const obs::JsonValue& v) {
  const double d = v.as_number();
  if (!(d >= 0.0)) throw std::invalid_argument("negative count");
  return static_cast<std::size_t>(d);
}

/// Tolerant lookup for fields added after v1. Unlike `.at()` — whose throw
/// marks the whole line corrupt — an absent key returns nullptr, so lines
/// written before the field existed still decode (the field reads as "not
/// recorded", matching the header's "unknown keys are ignored" promise in
/// the other direction).
const obs::JsonValue* find_field(const obs::JsonValue& item,
                                 std::string_view key) {
  for (const auto& [name, value] : item.as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::vector<TrialRecord> decode_records(const obs::JsonValue& value) {
  std::vector<TrialRecord> records;
  records.reserve(value.as_array().size());
  for (const obs::JsonValue& item : value.as_array()) {
    TrialRecord record;
    record.heuristic = item.at("heuristic").as_string();
    record.machines_improved = as_size(item.at("improved"));
    record.machines_unchanged = as_size(item.at("unchanged"));
    record.machines_worsened = as_size(item.at("worsened"));
    const auto& deltas = item.at("finish_deltas").as_array();
    record.finish_deltas.reserve(deltas.size());
    for (const obs::JsonValue& d : deltas) {
      record.finish_deltas.push_back(d.as_number());
    }
    const obs::JsonValue& mean = item.at("mean_completion_delta");
    if (!mean.is_null()) {
      record.has_mean_completion_delta = true;
      record.mean_completion_delta = mean.as_number();
    }
    record.makespan_increased = item.at("makespan_increased").as_bool();
    record.original_makespan = item.at("original_makespan").as_number();
    if (const obs::JsonValue* gap = find_field(item, "gap_pct");
        gap != nullptr && !gap->is_null()) {
      record.has_gap = true;
      record.gap_pct = gap->as_number();
    }
    if (const obs::JsonValue* exact = find_field(item, "gap_exact");
        exact != nullptr) {
      record.gap_exact = exact->as_bool();
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<QuarantineRecord> decode_quarantined(const obs::JsonValue& value,
                                                 const CheckpointKey& key) {
  std::vector<QuarantineRecord> quarantined;
  quarantined.reserve(value.as_array().size());
  for (const obs::JsonValue& item : value.as_array()) {
    QuarantineRecord q;
    q.trial = key.trial;
    q.study_seed = key.seed;
    q.heuristic = item.at("heuristic").as_string();
    q.site = item.at("site").as_string();
    q.error = item.at("error").as_string();
    quarantined.push_back(std::move(q));
  }
  return quarantined;
}

}  // namespace

const TrialOutcome* CheckpointData::find(std::string_view point,
                                         std::uint64_t seed,
                                         std::size_t trial) const {
  const auto it =
      trials.find(CheckpointKey{std::string(point), seed, trial});
  return it == trials.end() ? nullptr : &it->second;
}

std::string encode_trial(const CheckpointKey& key,
                         const TrialOutcome& outcome) {
  obs::JsonValue::Object object;
  object.reserve(6);
  object.emplace_back("v", obs::JsonValue(kVersion));
  object.emplace_back("point", obs::JsonValue(key.point));
  // Decimal string: a uint64 seed survives the double-based JSON model.
  object.emplace_back("seed", obs::JsonValue(std::to_string(key.seed)));
  object.emplace_back("trial", obs::JsonValue(key.trial));
  object.emplace_back("records", encode_records(outcome.records));
  object.emplace_back("quarantined", encode_quarantined(outcome.quarantined));
  return obs::JsonValue(std::move(object)).dump();
}

std::optional<std::pair<CheckpointKey, TrialOutcome>> decode_trial(
    std::string_view line) {
  try {
    const obs::JsonValue value = obs::JsonValue::parse(line);
    const double version = value.at("v").as_number();
    if (version != static_cast<double>(kVersion)) return std::nullopt;

    CheckpointKey key;
    key.point = value.at("point").as_string();
    const std::string& seed_text = value.at("seed").as_string();
    const auto [ptr, ec] = std::from_chars(
        seed_text.data(), seed_text.data() + seed_text.size(), key.seed);
    if (ec != std::errc{} || ptr != seed_text.data() + seed_text.size()) {
      return std::nullopt;
    }
    key.trial = as_size(value.at("trial"));

    TrialOutcome outcome;
    outcome.completed = true;
    outcome.records = decode_records(value.at("records"));
    outcome.quarantined = decode_quarantined(value.at("quarantined"), key);
    return std::make_pair(std::move(key), std::move(outcome));
  } catch (const std::exception&) {
    return std::nullopt;  // syntax error, missing key, or kind mismatch
  }
}

CheckpointData load_checkpoint(const std::string& path) {
  HCSCHED_SPAN(load_span, "checkpoint.load");
  CheckpointData data;
  std::ifstream in(path);
  if (!in.is_open()) return data;  // resuming from nothing
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++data.lines_read;
    if (auto decoded = decode_trial(line)) {
      // Later duplicates win: an appended re-run supersedes earlier lines.
      data.trials.insert_or_assign(std::move(decoded->first),
                                   std::move(decoded->second));
    } else {
      ++data.corrupt_lines;
      HCSCHED_COUNT(obs::Counter::kCheckpointCorruptLines);
      HCSCHED_TRACE_EVENT("checkpoint.corrupt_line",
                          {{"path", obs::JsonValue(path)},
                           {"line", obs::JsonValue(data.lines_read)}});
    }
  }
  HCSCHED_SPAN_ATTR(load_span, "lines", obs::JsonValue(data.lines_read));
  HCSCHED_SPAN_ATTR(load_span, "corrupt",
                    obs::JsonValue(data.corrupt_lines));
  return data;
}

CheckpointWriter::CheckpointWriter(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_.is_open()) {
    throw std::runtime_error("checkpoint: cannot open " + path +
                             " for append");
  }
}

void CheckpointWriter::append_trial(const CheckpointKey& key,
                                    const TrialOutcome& outcome) {
  fault::maybe_inject(fault::Site::kCheckpointWrite, key.trial);
  HCSCHED_SPAN(write_span, "checkpoint.append");
  HCSCHED_SPAN_ATTR(write_span, "trial", obs::JsonValue(key.trial));
  const std::string line = encode_trial(key, outcome);
  // Audited: durability requires the flush inside the lock — a checkpoint
  // line must be on disk before the next writer interleaves (crash-resume
  // replays only fully flushed lines).
  const core::MutexLock lock(mutex_);
  out_ << line << '\n';
  out_.flush();  // lint:allow(blocking-under-lock)
  if (!out_) {
    throw std::runtime_error("checkpoint: write to " + path_ + " failed");
  }
  HCSCHED_COUNT(obs::Counter::kCheckpointTrialsWritten);
  HCSCHED_METRIC_COUNT("hcsched_checkpoint_writes_total",
                       "Trial outcomes appended to a checkpoint file", 1);
  HCSCHED_TRACE_EVENT("checkpoint.trial_written",
                      {{"point", obs::JsonValue(key.point)},
                       {"trial", obs::JsonValue(key.trial)}});
}

}  // namespace hcsched::sim
