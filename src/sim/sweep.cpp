#include "sim/sweep.hpp"

#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace hcsched::sim {

std::vector<SweepPoint> standard_sweep() {
  constexpr double kHigh = 0.9;
  constexpr double kLow = 0.3;
  const struct {
    const char* name;
    double v_task;
    double v_machine;
  } cells[] = {
      {"HiHi", kHigh, kHigh},
      {"HiLo", kHigh, kLow},
      {"LoHi", kLow, kHigh},
      {"LoLo", kLow, kLow},
  };
  std::vector<SweepPoint> points;
  for (etc::Consistency c :
       {etc::Consistency::kInconsistent, etc::Consistency::kSemiConsistent,
        etc::Consistency::kConsistent}) {
    for (const auto& cell : cells) {
      SweepPoint p;
      p.label = std::string(etc::to_string(c)) + " " + cell.name;
      p.consistency = c;
      p.v_task = cell.v_task;
      p.v_machine = cell.v_machine;
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::vector<SweepResult> run_sweep(const StudyParams& base,
                                   const std::vector<SweepPoint>& points,
                                   ThreadPool& pool) {
  std::vector<SweepResult> results;
  results.reserve(points.size());
  for (auto& report :
       run_sweep_report(base, points, pool)) {
    results.push_back(
        SweepResult{std::move(report.point), std::move(report.report.rows)});
  }
  return results;
}

std::vector<SweepReportResult> run_sweep_report(
    const StudyParams& base, const std::vector<SweepPoint>& points,
    ThreadPool& pool, const StudyHooks& hooks) {
  std::vector<SweepReportResult> results;
  results.reserve(points.size());
  for (const SweepPoint& point : points) {
    if (hooks.cancel != nullptr && hooks.cancel->cancelled()) break;
    StudyParams params = base;
    params.consistency = point.consistency;
    params.cvb.v_task = point.v_task;
    params.cvb.v_machine = point.v_machine;
    HCSCHED_TRACE_EVENT(
        "sweep.point",
        {{"label", obs::JsonValue(point.label)},
         {"v_task", obs::JsonValue(point.v_task)},
         {"v_machine", obs::JsonValue(point.v_machine)},
         {"trials", obs::JsonValue(params.trials)}});
    StudyHooks point_hooks = hooks;
    point_hooks.point_label = point.label;
    SweepReportResult r;
    r.point = point;
    {
      // Main-thread span per sweep point; the study span nests under it.
      HCSCHED_SPAN(point_span, "sweep:" + point.label);
      HCSCHED_SPAN_ATTR(point_span, "label", obs::JsonValue(point.label));
      r.report = run_iterative_study_report(params, pool, point_hooks);
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace hcsched::sim
