// Monte-Carlo study of the iterative technique (extension experiments
// EXT-1/EXT-2 in DESIGN.md).
//
// For each trial a fresh CVB ETC matrix is generated, each heuristic maps
// it, the iterative technique runs, and the per-machine finishing times of
// the original mapping are compared against the final finishing times. Rows
// aggregate, per heuristic: how many non-makespan machines improved /
// stayed / worsened, the mean relative improvement of machine finishing
// times, and how often the effective makespan increased.
//
// Trials are independent; they are distributed over a ThreadPool with one
// RNG stream per trial (derived by jumping), so results are reproducible
// regardless of thread count.
#pragma once

#include <string>
#include <vector>

#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "rng/tie_break.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace hcsched::sim {

struct StudyParams {
  std::vector<std::string> heuristics{};  ///< registry names
  etc::CvbParams cvb{};
  etc::Consistency consistency = etc::Consistency::kInconsistent;
  std::size_t trials = 50;
  std::uint64_t seed = 1;
  rng::TiePolicy tie_policy = rng::TiePolicy::kDeterministic;
  /// Forward the previous mapping as a seed (Genitor's protocol).
  bool use_seeding = true;
  /// Two-phase greedy dispatch for the whole study: kAuto inherits the
  /// process-wide mode (build/env default or a CLI --no-fastpath override);
  /// kForceOn/kForceOff pin one path for the study's duration (used to
  /// compare study wall-clock like for like).
  heuristics::fastpath::Mode fastpath = heuristics::fastpath::Mode::kAuto;
};

struct StudyRow {
  std::string heuristic{};
  std::size_t trials = 0;
  /// Machine-level counts across all trials (non-makespan machines of the
  /// original mapping only; the original makespan machine's finishing time
  /// is frozen by construction).
  std::size_t machines_improved = 0;
  std::size_t machines_unchanged = 0;
  std::size_t machines_worsened = 0;
  /// Relative change of machine finishing times, (final - orig) / orig,
  /// over non-makespan machines (negative = improvement).
  RunningStats finish_delta{};
  /// Relative change of the mean machine completion time per trial.
  RunningStats mean_completion_delta{};
  /// Number of trials whose effective makespan exceeded the original.
  std::size_t makespan_increases = 0;
  /// Original-mapping makespan (context for the ratios).
  RunningStats original_makespan{};
};

std::vector<StudyRow> run_iterative_study(const StudyParams& params,
                                          ThreadPool& pool);

}  // namespace hcsched::sim
