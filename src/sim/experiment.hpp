// Monte-Carlo study of the iterative technique (extension experiments
// EXT-1/EXT-2 in DESIGN.md).
//
// For each trial a fresh CVB ETC matrix is generated, each heuristic maps
// it, the iterative technique runs, and the per-machine finishing times of
// the original mapping are compared against the final finishing times. Rows
// aggregate, per heuristic: how many non-makespan machines improved /
// stayed / worsened, the mean relative improvement of machine finishing
// times, and how often the effective makespan increased.
//
// Trials are independent; they are distributed over a ThreadPool with one
// RNG stream per trial (derived by jumping), and every trial's contribution
// is captured as a TrialRecord before a *sequential, trial-ordered* fold
// produces the study rows — so results are bit-identical regardless of
// thread count, of which trials were replayed from a checkpoint, and of
// which trials were quarantined by injected faults (the surviving trials'
// statistics equal a clean run restricted to the same trial set).
//
// Robustness layer (docs/ROBUSTNESS.md):
//   * a trial that throws (fault::FaultInjected or any std::exception) is
//     *quarantined* — captured into the report with its site, seed, trial
//     and heuristic — instead of aborting the study;
//   * a StudyHooks::cancel token stops the study between trials (and, via
//     the thread-pool's ScopedCancel install, inside the anytime
//     heuristics); completed trials are kept and the report is flagged;
//   * StudyHooks::checkpoint streams each completed trial to a JSONL file;
//     StudyHooks::resume replays previously completed trials by
//     (point, seed, trial) key without recomputation.
#pragma once

#include <string>
#include <vector>

#include "core/bound.hpp"
#include "core/cancel.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "rng/tie_break.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace hcsched::sim {

class CheckpointWriter;
struct CheckpointData;

struct StudyParams {
  std::vector<std::string> heuristics{};  ///< registry names
  etc::CvbParams cvb{};
  etc::Consistency consistency = etc::Consistency::kInconsistent;
  std::size_t trials = 50;
  std::uint64_t seed = 1;
  rng::TiePolicy tie_policy = rng::TiePolicy::kDeterministic;
  /// Forward the previous mapping as a seed (Genitor's protocol).
  bool use_seeding = true;
  /// Two-phase greedy dispatch for the whole study: kAuto inherits the
  /// process-wide mode (build/env default or a CLI --no-fastpath override);
  /// kForceOn/kForceOff pin one path for the study's duration (used to
  /// compare study wall-clock like for like).
  heuristics::fastpath::Mode fastpath = heuristics::fastpath::Mode::kAuto;
  /// Optimality-gap columns (EXT-11): each trial computes one gap reference
  /// for its instance — the exact BnB optimum when proven within
  /// `gap_options`, the preemptive-relaxation lower bound otherwise — and
  /// every heuristic's original-mapping makespan is reported as the
  /// fractional gap (makespan - ref) / ref.
  bool gap = false;
  core::GapOptions gap_options{};
};

struct StudyRow {
  std::string heuristic{};
  std::size_t trials = 0;
  /// Machine-level counts across all trials (non-makespan machines of the
  /// original mapping only; the original makespan machine's finishing time
  /// is frozen by construction).
  std::size_t machines_improved = 0;
  std::size_t machines_unchanged = 0;
  std::size_t machines_worsened = 0;
  /// Relative change of machine finishing times, (final - orig) / orig,
  /// over non-makespan machines (negative = improvement).
  RunningStats finish_delta{};
  /// Relative change of the mean machine completion time per trial.
  RunningStats mean_completion_delta{};
  /// Number of trials whose effective makespan exceeded the original.
  std::size_t makespan_increases = 0;
  /// Original-mapping makespan (context for the ratios).
  RunningStats original_makespan{};
  /// Fractional optimality gap of the original mapping vs the per-trial
  /// reference. Empty unless StudyParams::gap was set.
  RunningStats gap_pct{};
  /// Trials whose gap reference was a proven optimum (vs the bound).
  std::size_t gap_exact_trials = 0;
};

/// One (trial, heuristic) contribution to the study rows: everything the
/// fold needs, in fold order, so a record replayed from a checkpoint
/// reproduces the exact same floating-point accumulation as a live run.
struct TrialRecord {
  std::string heuristic{};
  std::size_t machines_improved = 0;
  std::size_t machines_unchanged = 0;
  std::size_t machines_worsened = 0;
  /// (final - orig) / orig per non-makespan machine with orig > 0, in
  /// machine order.
  std::vector<double> finish_deltas{};
  bool has_mean_completion_delta = false;
  double mean_completion_delta = 0.0;
  bool makespan_increased = false;
  double original_makespan = 0.0;
  /// Optimality gap of the original mapping (StudyParams::gap runs only).
  bool has_gap = false;
  double gap_pct = 0.0;
  bool gap_exact = false;
};

/// A failing (trial, heuristic) execution captured instead of aborting the
/// study. `heuristic` is empty when the trial failed before any heuristic
/// ran (e.g. an etc-generate fault quarantines the whole trial).
struct QuarantineRecord {
  std::size_t trial = 0;
  std::uint64_t study_seed = 0;  ///< seed of the study (trial gives the stream)
  std::string heuristic{};
  /// Fault site name for FaultInjected errors; "exception" otherwise.
  std::string site{};
  std::string error{};
};

/// Everything one trial produced. `completed == false` marks a trial the
/// study never ran (cancelled before start); it contributes nothing.
struct TrialOutcome {
  bool completed = false;
  std::vector<TrialRecord> records{};
  std::vector<QuarantineRecord> quarantined{};
};

struct StudyReport {
  std::vector<StudyRow> rows{};
  /// Quarantined executions in (trial, heuristic) order.
  std::vector<QuarantineRecord> quarantined{};
  /// Per-trial outcomes, indexed by trial (the fold's input; kept so tests
  /// and checkpoints can re-fold arbitrary trial subsets).
  std::vector<TrialOutcome> outcomes{};
  std::size_t trials_requested = 0;
  std::size_t trials_completed = 0;
  /// Trials replayed from StudyHooks::resume instead of recomputed.
  std::size_t trials_replayed = 0;
  /// True when a CancelToken stopped the study before every trial ran.
  bool cancelled = false;
};

/// Optional robustness hooks for a study run. All pointers are borrowed and
/// may be null; `point_label` namespaces checkpoint keys when several sweep
/// points share one file.
struct StudyHooks {
  const core::CancelToken* cancel = nullptr;
  CheckpointWriter* checkpoint = nullptr;
  const CheckpointData* resume = nullptr;
  std::string point_label{};
};

/// Deterministic, trial-ordered fold of per-trial outcomes into study rows.
/// Pure: same outcomes -> bit-identical rows, regardless of how (or when)
/// the outcomes were produced. Skipped trials (completed == false)
/// contribute nothing; quarantined records are collected, not aggregated.
StudyReport fold_outcomes(const StudyParams& params,
                          std::vector<TrialOutcome> outcomes);

/// Runs the study with the full robustness surface (quarantine,
/// cancellation, checkpoint/resume).
StudyReport run_iterative_study_report(const StudyParams& params,
                                       ThreadPool& pool,
                                       const StudyHooks& hooks = {});

/// Classic entry point: rows only, no hooks.
std::vector<StudyRow> run_iterative_study(const StudyParams& params,
                                          ThreadPool& pool);

}  // namespace hcsched::sim
