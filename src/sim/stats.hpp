// Online statistics (Welford) for the Monte-Carlo studies.
#pragma once

#include <cstddef>

namespace hcsched::sim {

class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); 0 for fewer than two samples.
  double ci95_half_width() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hcsched::sim
