#include "sim/batch_online.hpp"

#include <algorithm>
#include <stdexcept>

#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"

namespace hcsched::sim {

const char* to_string(BatchPolicy policy) noexcept {
  switch (policy) {
    case BatchPolicy::kMinMin:
      return "Min-Min";
    case BatchPolicy::kMaxMin:
      return "Max-Min";
    case BatchPolicy::kSufferage:
      return "Sufferage";
  }
  return "?";
}

BatchOnlineDispatcher::BatchOnlineDispatcher(BatchOnlineConfig config)
    : config_(config) {
  if (config_.interval <= 0.0) {
    throw std::invalid_argument(
        "BatchOnlineDispatcher: interval must be positive");
  }
}

OnlineResult BatchOnlineDispatcher::run(const etc::EtcMatrix& matrix,
                                        const std::vector<OnlineTask>& stream,
                                        std::vector<double> initial_ready,
                                        rng::TieBreaker& ties) const {
  const std::size_t machines = matrix.num_machines();
  if (initial_ready.size() != machines) {
    throw std::invalid_argument(
        "BatchOnlineDispatcher: initial_ready size mismatch");
  }
  OnlineResult result;
  result.final_ready = std::move(initial_ready);
  result.records.reserve(stream.size());

  // One wave of a mapping event: `batch` must hold distinct task ids.
  const auto map_wave = [&](const std::vector<OnlineTask>& batch,
                            double event_time) {
    if (batch.empty()) return;
    // Build a meta-task Problem: the batch's tasks over all machines, with
    // each machine available no earlier than the event time.
    std::vector<etc::TaskId> task_ids;
    task_ids.reserve(batch.size());
    for (const OnlineTask& t : batch) task_ids.push_back(t.task);
    std::vector<etc::MachineId> machine_ids(machines);
    for (std::size_t m = 0; m < machines; ++m) {
      machine_ids[m] = static_cast<etc::MachineId>(m);
    }
    std::vector<double> ready(machines);
    for (std::size_t m = 0; m < machines; ++m) {
      ready[m] = std::max(result.final_ready[m], event_time);
    }
    const sched::Problem problem(matrix, task_ids, machine_ids, ready);

    sched::Schedule schedule = [&] {
      switch (config_.policy) {
        case BatchPolicy::kMaxMin: {
          heuristics::MaxMin maxmin;
          return maxmin.map(problem, ties);
        }
        case BatchPolicy::kSufferage: {
          heuristics::Sufferage sufferage;
          return sufferage.map(problem, ties);
        }
        case BatchPolicy::kMinMin:
        default: {
          heuristics::MinMin minmin;
          return minmin.map(problem, ties);
        }
      }
    }();

    // Commit, preserving each batch task's arrival for the flow metric.
    for (const sched::Assignment& a : schedule.assignment_order()) {
      OnlineDispatchRecord record;
      record.task = a.task;
      record.machine = a.machine;
      // Duplicate ids within a batch take the earliest matching arrival;
      // with the cycling streams used here ids within a batch are distinct.
      for (const OnlineTask& t : batch) {
        if (t.task == a.task) {
          record.arrival = t.arrival;
          break;
        }
      }
      record.start = a.start;
      record.finish = a.finish;
      const std::size_t slot = problem.slot_of(a.machine);
      result.final_ready[slot] =
          std::max(result.final_ready[slot], a.finish);
      result.records.push_back(record);
    }
  };

  // A mapping event: duplicate task ids within the queue (possible when the
  // stream cycles over a small ETC matrix) are mapped in successive waves
  // of distinct ids at the same event time.
  const auto map_batch = [&](std::vector<OnlineTask> batch,
                             double event_time) {
    while (!batch.empty()) {
      std::vector<OnlineTask> wave;
      std::vector<OnlineTask> remainder;
      std::vector<char> seen(matrix.num_tasks(), 0);
      for (const OnlineTask& t : batch) {
        char& flag = seen[static_cast<std::size_t>(t.task)];
        if (flag != 0) {
          remainder.push_back(t);
        } else {
          flag = 1;
          wave.push_back(t);
        }
      }
      map_wave(wave, event_time);
      batch = std::move(remainder);
    }
  };

  std::vector<OnlineTask> pending;
  double next_event = config_.interval;
  double prev_arrival = -1.0;
  for (const OnlineTask& t : stream) {
    if (t.arrival < prev_arrival) {
      throw std::invalid_argument(
          "BatchOnlineDispatcher: stream must be arrival-ordered");
    }
    prev_arrival = t.arrival;
    if (t.task < 0 ||
        static_cast<std::size_t>(t.task) >= matrix.num_tasks()) {
      throw std::out_of_range("BatchOnlineDispatcher: task id out of range");
    }
    while (t.arrival >= next_event) {
      map_batch(pending, next_event);
      pending.clear();
      next_event += config_.interval;
    }
    pending.push_back(t);
  }
  // Final event: flush whatever is still queued.
  if (!pending.empty()) {
    const double last_event =
        std::max(next_event, pending.back().arrival);
    map_batch(pending, last_event);
  }
  return result;
}

}  // namespace hcsched::sim
