#include "sim/experiment.hpp"

#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/check.hpp"
#include "core/iterative.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/metrics.hpp"

namespace hcsched::sim {

std::vector<StudyRow> run_iterative_study(const StudyParams& params,
                                          ThreadPool& pool) {
  if (params.heuristics.empty()) {
    throw std::invalid_argument("run_iterative_study: no heuristics");
  }
  std::vector<StudyRow> rows(params.heuristics.size());
  for (std::size_t h = 0; h < params.heuristics.size(); ++h) {
    rows[h].heuristic = params.heuristics[h];
  }
  std::mutex merge_mutex;

  // Pin the two-phase greedy dispatch for the whole study (kAuto leaves the
  // process-wide mode untouched, e.g. a CLI --no-fastpath override).
  // Process-wide, but safe here: parallel_for_chunks blocks until every
  // worker drains, so the override cannot leak into unrelated concurrent
  // work.
  std::optional<heuristics::fastpath::ScopedMode> fastpath_scope;
  if (params.fastpath != heuristics::fastpath::Mode::kAuto) {
    fastpath_scope.emplace(params.fastpath);
  }

  pool.parallel_for_chunks(
      params.trials, [&](std::size_t begin, std::size_t end) {
        // Thread-local accumulators, merged once per chunk; operation
        // counters land in the global table when the scope exits.
        const obs::counters::CounterScope counter_scope;
        std::vector<StudyRow> local(rows.size());
        // Heuristic instances are stateless across trials (Genitor carries
        // only last-run stats), so construct once per chunk.
        std::vector<std::unique_ptr<heuristics::Heuristic>> instances;
        instances.reserve(params.heuristics.size());
        for (const auto& name : params.heuristics) {
          instances.push_back(heuristics::make_heuristic(name));
        }
        const etc::CvbEtcGenerator generator(params.cvb);
        const core::IterativeMinimizer minimizer{
            core::IterativeOptions{.use_seeding = params.use_seeding}};

        for (std::size_t trial = begin; trial < end; ++trial) {
          // Independent, thread-count-agnostic stream per trial.
          rng::Rng trial_rng = rng::Rng(params.seed).split(trial);
          const etc::EtcMatrix matrix = etc::shape_consistency(
              generator.generate(trial_rng), params.consistency);
          const sched::Problem problem = sched::Problem::full(matrix);

          for (std::size_t h = 0; h < instances.size(); ++h) {
            core::IterativeResult result = [&] {
              if (params.tie_policy == rng::TiePolicy::kRandom) {
                rng::TieBreaker ties(trial_rng);
                return minimizer.run(*instances[h], problem, ties);
              }
              rng::TieBreaker ties;
              return minimizer.run(*instances[h], problem, ties);
            }();

            StudyRow& row = local[h];
            ++row.trials;
            const auto& original = result.original().schedule;
            const sched::MachineId span_machine =
                result.original().makespan_machine;
            row.original_makespan.add(result.original().makespan);

            double orig_sum = 0.0;
            double final_sum = 0.0;
            for (const auto& [machine, final_ct] :
                 result.final_finishing_times) {
              const double orig_ct = original.completion_time(machine);
              orig_sum += orig_ct;
              final_sum += final_ct;
              if (machine == span_machine) continue;  // frozen by definition
              const double delta = final_ct - orig_ct;
              if (delta < -1e-9) {
                ++row.machines_improved;
              } else if (delta > 1e-9) {
                ++row.machines_worsened;
              } else {
                ++row.machines_unchanged;
              }
              if (orig_ct > 0.0) row.finish_delta.add(delta / orig_ct);
            }
            if (orig_sum > 0.0) {
              row.mean_completion_delta.add((final_sum - orig_sum) /
                                            orig_sum);
            }
            if (result.makespan_increased()) ++row.makespan_increases;
            // Per-trial report: one event per (trial, heuristic) run with
            // the makespan transition and balance-index delta.
            HCSCHED_TRACE_EVENT(
                "study.trial",
                {{"heuristic", obs::JsonValue(row.heuristic)},
                 {"trial", obs::JsonValue(trial)},
                 {"original_makespan",
                  obs::JsonValue(result.original().makespan)},
                 {"final_makespan", obs::JsonValue(result.final_makespan())},
                 {"makespan_increased",
                  obs::JsonValue(result.makespan_increased())},
                 {"original_balance_index",
                  obs::JsonValue(sched::load_balance_index(original))},
                 {"iterations",
                  obs::JsonValue(result.iterations.size())}});
          }
        }

        const std::lock_guard<std::mutex> lock(merge_mutex);
        HCSCHED_INVARIANT(local.size() == rows.size(),
                          "chunk accumulated ", local.size(),
                          " heuristic rows, study has ", rows.size());
        for (std::size_t h = 0; h < rows.size(); ++h) {
          rows[h].trials += local[h].trials;
          rows[h].machines_improved += local[h].machines_improved;
          rows[h].machines_unchanged += local[h].machines_unchanged;
          rows[h].machines_worsened += local[h].machines_worsened;
          rows[h].finish_delta.merge(local[h].finish_delta);
          rows[h].mean_completion_delta.merge(local[h].mean_completion_delta);
          rows[h].makespan_increases += local[h].makespan_increases;
          rows[h].original_makespan.merge(local[h].original_makespan);
        }
      });
  return rows;
}

}  // namespace hcsched::sim
