#include "sim/experiment.hpp"

#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/check.hpp"
#include "core/iterative.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"
#include "sched/metrics.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault/fault.hpp"

namespace hcsched::sim {

namespace {

/// Fault key of one (trial, heuristic) execution: trials are striped by the
/// heuristic count so a rate-armed heuristic-map site can fail one
/// heuristic of a trial while the rest survive (docs/ROBUSTNESS.md pins
/// this layout; tests predict the injected set from it).
std::uint64_t heuristic_fault_key(std::size_t trial, std::size_t h,
                                  std::size_t heuristic_count) {
  return static_cast<std::uint64_t>(trial) * heuristic_count + h;
}

#if HCSCHED_TRACE
/// Root-trace seed of one trial's span tree: a pure function of
/// (study seed, trial), so resumed or re-run studies emit identical span
/// and trace IDs regardless of thread scheduling. The salt separates this
/// stream from every study RNG stream.
std::uint64_t trial_trace_seed(std::uint64_t study_seed, std::size_t trial) {
  rng::SplitMix64 mix(study_seed ^ 0x7370616e2d736565ULL);
  return mix.next() ^ (trial * 0x9e3779b97f4a7c15ULL);
}
#endif

/// Runs every heuristic of one trial, capturing failures as quarantine
/// records instead of throwing. Deterministic given (params, trial): the
/// trial RNG stream is derived by jumping, and each heuristic draws its
/// random ties from its own split of that stream, so a quarantined
/// heuristic cannot perturb the randomness — hence the records — of any
/// other heuristic in the same trial.
TrialOutcome run_one_trial(
    const StudyParams& params, std::size_t trial,
    const std::vector<std::unique_ptr<heuristics::Heuristic>>& instances,
    const etc::CvbEtcGenerator& generator,
    const core::IterativeMinimizer& minimizer) {
  TrialOutcome outcome;
  outcome.completed = true;
  const fault::ScopedKey trial_key(trial);
  // Every (trial, heuristic) execution — including quarantined ones, whose
  // stack unwinding closes the nested spans — lands under this
  // deterministic trace root.
  HCSCHED_SPAN_SEEDED(trial_span, "trial",
                      trial_trace_seed(params.seed, trial));
  HCSCHED_SPAN_ATTR(trial_span, "trial", obs::JsonValue(trial));
  HCSCHED_SPAN_ATTR(trial_span, "seed", obs::JsonValue(params.seed));

  // Independent, thread-count-agnostic stream per trial.
  rng::Rng trial_rng = rng::Rng(params.seed).split(trial);
  std::optional<etc::EtcMatrix> matrix;
  try {
    fault::maybe_inject(fault::Site::kEtcGenerate, trial);
    matrix = etc::shape_consistency(generator.generate(trial_rng),
                                    params.consistency);
  } catch (const fault::FaultInjected& fault) {
    // No matrix, no heuristic ran: the whole trial is quarantined once.
    outcome.quarantined.push_back(QuarantineRecord{
        trial, params.seed, std::string{},
        std::string(fault::to_string(fault.site())), fault.what()});
    HCSCHED_COUNT(obs::Counter::kTrialsQuarantined);
    HCSCHED_METRIC_COUNT("hcsched_trials_quarantined_total",
                         "Trials with at least one quarantined execution", 1);
    HCSCHED_SPAN_ATTR(trial_span, "quarantined", obs::JsonValue(true));
    return outcome;
  }
  const sched::Problem problem = sched::Problem::full(*matrix);

  // One gap reference per trial, shared by every heuristic's row: the same
  // instance has the same optimum (or bound) no matter who maps it.
  std::optional<core::GapReference> gap_ref;
  if (params.gap) {
    gap_ref = core::gap_reference(problem, params.gap_options);
    HCSCHED_SPAN_ATTR(trial_span, "gap_reference",
                      obs::JsonValue(gap_ref->value));
    HCSCHED_SPAN_ATTR(trial_span, "gap_exact", obs::JsonValue(gap_ref->exact));
  }

  bool trial_quarantined = false;
  for (std::size_t h = 0; h < instances.size(); ++h) {
    const fault::ScopedKey heuristic_key(
        heuristic_fault_key(trial, h, instances.size()));
    // Per-heuristic tie stream (see above); derived after matrix generation
    // consumed trial_rng, so it is a fixed function of (seed, trial, h).
    rng::Rng tie_rng = trial_rng.split(h);
    try {
      core::IterativeResult result = [&] {
        if (params.tie_policy == rng::TiePolicy::kRandom) {
          rng::TieBreaker ties(tie_rng);
          return minimizer.run(*instances[h], problem, ties);
        }
        rng::TieBreaker ties;
        return minimizer.run(*instances[h], problem, ties);
      }();

      TrialRecord record;
      record.heuristic = params.heuristics[h];
      const auto& original = result.original().schedule;
      const sched::MachineId span_machine = result.original().makespan_machine;
      record.original_makespan = result.original().makespan;

      double orig_sum = 0.0;
      double final_sum = 0.0;
      for (const auto& [machine, final_ct] : result.final_finishing_times) {
        const double orig_ct = original.completion_time(machine);
        orig_sum += orig_ct;
        final_sum += final_ct;
        if (machine == span_machine) continue;  // frozen by definition
        const double delta = final_ct - orig_ct;
        if (delta < -1e-9) {
          ++record.machines_improved;
        } else if (delta > 1e-9) {
          ++record.machines_worsened;
        } else {
          ++record.machines_unchanged;
        }
        if (orig_ct > 0.0) record.finish_deltas.push_back(delta / orig_ct);
      }
      if (orig_sum > 0.0) {
        record.has_mean_completion_delta = true;
        record.mean_completion_delta = (final_sum - orig_sum) / orig_sum;
      }
      record.makespan_increased = result.makespan_increased();
      if (gap_ref.has_value()) {
        record.has_gap = true;
        record.gap_pct =
            core::gap_pct(result.original().makespan, *gap_ref);
        record.gap_exact = gap_ref->exact;
      }
      // Per-trial report: one event per (trial, heuristic) run with the
      // makespan transition and balance-index delta.
      HCSCHED_TRACE_EVENT(
          "study.trial",
          {{"heuristic", obs::JsonValue(record.heuristic)},
           {"trial", obs::JsonValue(trial)},
           {"original_makespan", obs::JsonValue(result.original().makespan)},
           {"final_makespan", obs::JsonValue(result.final_makespan())},
           {"makespan_increased", obs::JsonValue(result.makespan_increased())},
           {"original_balance_index",
            obs::JsonValue(sched::load_balance_index(original))},
           {"iterations", obs::JsonValue(result.iterations.size())}});
      outcome.records.push_back(std::move(record));
    } catch (const fault::FaultInjected& fault) {
      outcome.quarantined.push_back(QuarantineRecord{
          trial, params.seed, params.heuristics[h],
          std::string(fault::to_string(fault.site())), fault.what()});
      trial_quarantined = true;
      HCSCHED_TRACE_EVENT(
          "study.trial_quarantined",
          {{"heuristic", obs::JsonValue(params.heuristics[h])},
           {"trial", obs::JsonValue(trial)},
           {"site", obs::JsonValue(fault::to_string(fault.site()))}});
    } catch (const std::exception& error) {
      outcome.quarantined.push_back(QuarantineRecord{
          trial, params.seed, params.heuristics[h], "exception",
          error.what()});
      trial_quarantined = true;
      HCSCHED_TRACE_EVENT(
          "study.trial_quarantined",
          {{"heuristic", obs::JsonValue(params.heuristics[h])},
           {"trial", obs::JsonValue(trial)},
           {"site", obs::JsonValue("exception")}});
    }
  }
  if (trial_quarantined) {
    HCSCHED_COUNT(obs::Counter::kTrialsQuarantined);
    HCSCHED_METRIC_COUNT("hcsched_trials_quarantined_total",
                         "Trials with at least one quarantined execution", 1);
    HCSCHED_SPAN_ATTR(trial_span, "quarantined", obs::JsonValue(true));
  }
  return outcome;
}

}  // namespace

StudyReport fold_outcomes(const StudyParams& params,
                          std::vector<TrialOutcome> outcomes) {
  StudyReport report;
  report.trials_requested = params.trials;
  report.rows.resize(params.heuristics.size());
  std::unordered_map<std::string_view, std::size_t> row_index;
  row_index.reserve(params.heuristics.size());
  for (std::size_t h = 0; h < params.heuristics.size(); ++h) {
    report.rows[h].heuristic = params.heuristics[h];
    row_index.emplace(params.heuristics[h], h);
  }

  // Sequential, trial-ordered accumulation: the floating-point fold order
  // is a pure function of the outcome set, independent of which thread
  // computed (or which checkpoint stored) each outcome.
  for (const TrialOutcome& outcome : outcomes) {
    if (!outcome.completed) continue;
    ++report.trials_completed;
    for (const TrialRecord& record : outcome.records) {
      const auto it = row_index.find(record.heuristic);
      if (it == row_index.end()) continue;  // checkpoint from a wider study
      StudyRow& row = report.rows[it->second];
      ++row.trials;
      row.machines_improved += record.machines_improved;
      row.machines_unchanged += record.machines_unchanged;
      row.machines_worsened += record.machines_worsened;
      for (const double delta : record.finish_deltas) {
        row.finish_delta.add(delta);
      }
      if (record.has_mean_completion_delta) {
        row.mean_completion_delta.add(record.mean_completion_delta);
      }
      if (record.makespan_increased) ++row.makespan_increases;
      row.original_makespan.add(record.original_makespan);
      if (record.has_gap) {
        row.gap_pct.add(record.gap_pct);
        if (record.gap_exact) ++row.gap_exact_trials;
      }
    }
    for (const QuarantineRecord& q : outcome.quarantined) {
      report.quarantined.push_back(q);
    }
  }
  report.outcomes = std::move(outcomes);
  return report;
}

StudyReport run_iterative_study_report(const StudyParams& params,
                                       ThreadPool& pool,
                                       const StudyHooks& hooks) {
  if (params.heuristics.empty()) {
    throw std::invalid_argument("run_iterative_study: no heuristics");
  }

  // Pin the two-phase greedy dispatch for the whole study (kAuto leaves the
  // process-wide mode untouched, e.g. a CLI --no-fastpath override).
  // Process-wide, but safe here: parallel_for_chunks blocks until every
  // worker drains, so the override cannot leak into unrelated concurrent
  // work.
  std::optional<heuristics::fastpath::ScopedMode> fastpath_scope;
  if (params.fastpath != heuristics::fastpath::Mode::kAuto) {
    fastpath_scope.emplace(params.fastpath);
  }

  // One slot per trial; chunks write disjoint indices, so no merge lock and
  // no completion-order dependence. Quarantine capture rides inside each
  // slot (run_one_trial appends to its own outcome), so the only shared
  // mutable state here is the replay tally: a pure counter whose value is
  // read after the parallel_for_chunks barrier — relaxed ordering suffices,
  // the barrier's join publishes it.
  std::vector<TrialOutcome> outcomes(params.trials);
  std::atomic<std::size_t> replayed{0};

  // The study's own (main-thread) span: covers scheduling, the barrier
  // wait, and the fold. Trial trees are separate deterministic roots — see
  // trial_trace_seed — because they run on worker-thread stacks.
  HCSCHED_SPAN_SEEDED(study_span, "study",
                      params.seed ^ 0x73747564792d3173ULL);
  HCSCHED_SPAN_ATTR(study_span, "trials", obs::JsonValue(params.trials));
  HCSCHED_SPAN_ATTR(study_span, "heuristics",
                    obs::JsonValue(params.heuristics.size()));
  if (!hooks.point_label.empty()) {
    HCSCHED_SPAN_ATTR(study_span, "point", obs::JsonValue(hooks.point_label));
  }

  pool.parallel_for_chunks(
      params.trials,
      [&](std::size_t begin, std::size_t end) {
        // Operation counters land in the global table when the scope exits.
        const obs::counters::CounterScope counter_scope;
        // Heuristic instances are stateless across trials (Genitor carries
        // only last-run stats), so construct once per chunk.
        std::vector<std::unique_ptr<heuristics::Heuristic>> instances;
        instances.reserve(params.heuristics.size());
        for (const auto& name : params.heuristics) {
          instances.push_back(heuristics::make_heuristic(name));
        }
        const etc::CvbEtcGenerator generator(params.cvb);
        const core::IterativeMinimizer minimizer{
            core::IterativeOptions{.use_seeding = params.use_seeding}};

        for (std::size_t trial = begin; trial < end; ++trial) {
          if (hooks.cancel != nullptr && hooks.cancel->cancelled()) break;
          if (hooks.resume != nullptr) {
            if (const TrialOutcome* stored = hooks.resume->find(
                    hooks.point_label, params.seed, trial)) {
              outcomes[trial] = *stored;
              replayed.fetch_add(1, std::memory_order_relaxed);
              HCSCHED_COUNT(obs::Counter::kCheckpointTrialsReplayed);
              continue;
            }
          }
          TrialOutcome outcome =
              run_one_trial(params, trial, instances, generator, minimizer);
          // A trial the budget interrupted mid-flight holds degraded
          // best-so-far mappings; discard it so completed trials — and the
          // checkpoint — only ever hold clean, reproducible results.
          if (hooks.cancel != nullptr && hooks.cancel->cancelled()) break;
          if (hooks.checkpoint != nullptr) {
            try {
              hooks.checkpoint->append_trial(
                  CheckpointKey{hooks.point_label, params.seed, trial},
                  outcome);
            } catch (const std::exception& error) {
              // A failed persist never fails the study: the trial stays in
              // the in-memory report and a later resume recomputes it.
              HCSCHED_TRACE_EVENT(
                  "checkpoint.write_failed",
                  {{"trial", obs::JsonValue(trial)},
                   {"error", obs::JsonValue(error.what())}});
            }
          }
          outcomes[trial] = std::move(outcome);
        }
      },
      hooks.cancel);

  StudyReport report = fold_outcomes(params, std::move(outcomes));
  report.trials_replayed = replayed.load(std::memory_order_relaxed);
  if (hooks.cancel != nullptr && hooks.cancel->cancelled() &&
      report.trials_completed < report.trials_requested) {
    report.cancelled = true;
    HCSCHED_COUNT(obs::Counter::kStudiesCancelled);
    HCSCHED_METRIC_COUNT("hcsched_studies_cancelled_total",
                         "Studies that hit their cancellation budget", 1);
    HCSCHED_TRACE_EVENT(
        "study.cancelled",
        {{"trials_completed", obs::JsonValue(report.trials_completed)},
         {"trials_requested", obs::JsonValue(report.trials_requested)}});
  }
  HCSCHED_INVARIANT(report.rows.size() == params.heuristics.size(),
                    "study folded ", report.rows.size(),
                    " heuristic rows, expected ", params.heuristics.size());
  return report;
}

std::vector<StudyRow> run_iterative_study(const StudyParams& params,
                                          ThreadPool& pool) {
  return run_iterative_study_report(params, pool).rows;
}

}  // namespace hcsched::sim
