#include "sim/robustness.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hcsched::sim {

etc::EtcMatrix perturb(const etc::EtcMatrix& estimated,
                       const PerturbationModel& model, rng::Rng& rng) {
  if (model.noise < 0.0 || model.floor <= 0.0) {
    throw std::invalid_argument("perturb: noise >= 0 and floor > 0 required");
  }
  etc::EtcMatrix actual = estimated;
  for (std::size_t t = 0; t < actual.num_tasks(); ++t) {
    for (std::size_t m = 0; m < actual.num_machines(); ++m) {
      const double factor =
          std::max(model.floor, 1.0 + model.noise * rng.normal());
      actual.at(static_cast<int>(t), static_cast<int>(m)) *= factor;
    }
  }
  return actual;
}

std::vector<double> realized_completions(const sched::Schedule& mapping,
                                         const etc::EtcMatrix& actual) {
  const sched::Problem& problem = mapping.problem();
  if (actual.num_tasks() != problem.matrix().num_tasks() ||
      actual.num_machines() != problem.matrix().num_machines()) {
    throw std::invalid_argument(
        "realized_completions: actual matrix shape mismatch");
  }
  std::vector<double> ready = problem.initial_ready_times();
  for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
    for (const sched::Assignment& a :
         mapping.queue_of(problem.machines()[slot])) {
      ready[slot] += actual.at(a.task, a.machine);
    }
  }
  return ready;
}

double realized_makespan(const sched::Schedule& mapping,
                         const etc::EtcMatrix& actual) {
  const auto completions = realized_completions(mapping, actual);
  double best = 0.0;
  for (double c : completions) best = std::max(best, c);
  return best;
}

double robustness_radius(const sched::Schedule& mapping, double tau) {
  const sched::Problem& problem = mapping.problem();
  double radius = std::numeric_limits<double>::infinity();
  for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
    const sched::MachineId machine = problem.machines()[slot];
    const double completion = mapping.completion_time(machine);
    const double work = completion - problem.initial_ready(slot);
    if (work <= 0.0) continue;  // empty queue cannot inflate
    if (completion >= tau) return 0.0;  // already past the threshold
    radius = std::min(radius, (tau - completion) / work);
  }
  return radius;
}

}  // namespace hcsched::sim
