// Online (dynamic) dispatch substrate — Maheswaran et al. 1999, the
// paper's reference [14], where SWA and KPB originate as *immediate-mode*
// dynamic heuristics.
//
// Tasks arrive over time; each is dispatched on arrival to one machine
// using an immediate-mode policy that sees only the current machine ready
// times and the task's ETC row. This substrate closes the loop with the
// paper's §1 motivation: after an off-line batch mapping, the per-machine
// availability vector (original vs iterative-technique finishing times)
// becomes the initial state of the online system, and better non-makespan
// finishing times translate directly into earlier online completions.
#pragma once

#include <cstdint>
#include <vector>

#include "etc/etc_matrix.hpp"
#include "rng/tie_break.hpp"

namespace hcsched::sim {

/// Immediate-mode dispatch policies (Maheswaran et al. taxonomy).
enum class OnlinePolicy : std::uint8_t {
  kMct,  ///< earliest completion time (their baseline)
  kMet,  ///< minimum execution time
  kOlb,  ///< soonest-ready machine
  kKpb,  ///< earliest completion within the k-percent-best subset
  kSwa,  ///< switch MCT/MET on the load balance index
};

const char* to_string(OnlinePolicy policy) noexcept;

struct OnlineTask {
  etc::TaskId task = -1;   ///< row in the ETC matrix
  double arrival = 0.0;    ///< arrival time (non-decreasing in the stream)
};

struct OnlineDispatchRecord {
  etc::TaskId task = -1;
  etc::MachineId machine = -1;
  double arrival = 0.0;
  double start = 0.0;
  double finish = 0.0;
};

struct OnlineResult {
  std::vector<OnlineDispatchRecord> records{};
  std::vector<double> final_ready{};  ///< by machine index

  double makespan() const;
  /// Mean of (finish - arrival) over tasks: the online flow-time metric.
  double mean_flow_time() const;
};

struct OnlineConfig {
  OnlinePolicy policy = OnlinePolicy::kMct;
  double kpb_percent = 70.0;
  double swa_low = 0.35;
  double swa_high = 0.49;
};

class OnlineDispatcher {
 public:
  explicit OnlineDispatcher(OnlineConfig config = {});

  /// Dispatches `stream` (arrival-ordered) over machines whose initial
  /// availability is `initial_ready` (size = matrix machine count). A task
  /// starts at max(arrival, machine ready).
  OnlineResult run(const etc::EtcMatrix& matrix,
                   const std::vector<OnlineTask>& stream,
                   std::vector<double> initial_ready,
                   rng::TieBreaker& ties) const;

  const OnlineConfig& config() const noexcept { return config_; }

 private:
  OnlineConfig config_;
};

/// Poisson-ish arrival stream: `count` tasks with exponential(1/mean_gap)
/// inter-arrival times, task ids cycling over the matrix rows.
std::vector<OnlineTask> make_arrival_stream(std::size_t count,
                                            double mean_gap,
                                            std::size_t num_matrix_tasks,
                                            rng::Rng& rng);

}  // namespace hcsched::sim
