// Sweep/study checkpointing: JSONL persistence of completed trials.
//
// A checkpoint file is a sequence of single-line JSON records, one per
// *completed trial* (all heuristics, including its quarantined executions).
// Records are keyed by (point, seed, trial): `point` labels the sweep cell
// (empty for a standalone study), `seed` is the study seed, `trial` the
// trial index. On resume, a study looks each of its trials up by key and
// replays the stored TrialOutcome instead of recomputing it; because study
// statistics are produced by a deterministic trial-ordered fold of
// TrialRecords (see experiment.hpp), a resumed run's final statistics are
// bit-identical to an uninterrupted run — doubles are serialized with
// shortest-round-trip formatting (obs::json_number) and parsed back
// exactly.
//
// The format is append-only and crash-tolerant: a truncated or corrupt
// trailing line (the typical artifact of a killed process) is skipped with
// a counted warning (kCheckpointCorruptLines), never an error. Unknown keys
// are ignored so the schema can grow.
//
// Record schema (version 1):
//   {"v":1,"point":"...","seed":N,"trial":N,
//    "records":[{"heuristic":"...","improved":N,"unchanged":N,
//                "worsened":N,"finish_deltas":[...],
//                "mean_completion_delta":X|null,
//                "makespan_increased":B,"original_makespan":X}, ...],
//    "quarantined":[{"heuristic":"...","site":"...","error":"..."}, ...]}
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/thread_annotations.hpp"
#include "sim/experiment.hpp"

namespace hcsched::sim {

/// Key of one checkpoint record.
struct CheckpointKey {
  std::string point{};
  std::uint64_t seed = 0;
  std::size_t trial = 0;

  friend bool operator<(const CheckpointKey& a, const CheckpointKey& b) {
    if (a.point != b.point) return a.point < b.point;
    if (a.seed != b.seed) return a.seed < b.seed;
    return a.trial < b.trial;
  }
};

/// Parsed checkpoint contents: completed trials by key, plus load
/// diagnostics.
struct CheckpointData {
  std::map<CheckpointKey, TrialOutcome> trials{};
  std::size_t lines_read = 0;
  std::size_t corrupt_lines = 0;

  /// The stored outcome for (point, seed, trial), if any.
  const TrialOutcome* find(std::string_view point, std::uint64_t seed,
                           std::size_t trial) const;
};

/// Serializes one completed trial to a single JSON line (no trailing
/// newline). Exposed for tests; production code uses CheckpointWriter.
std::string encode_trial(const CheckpointKey& key, const TrialOutcome& outcome);

/// Parses one checkpoint line; nullopt for corrupt/unversioned input.
std::optional<std::pair<CheckpointKey, TrialOutcome>> decode_trial(
    std::string_view line);

/// Loads a checkpoint file. A missing file yields an empty CheckpointData
/// (resuming from nothing is not an error); corrupt lines are skipped and
/// counted (kCheckpointCorruptLines), and later duplicates of a key win so
/// a re-run that appended to the same file stays loadable.
CheckpointData load_checkpoint(const std::string& path);

/// Append-only, thread-safe writer. Each append is one line followed by a
/// flush, so a killed process loses at most the line being written (which
/// load_checkpoint then skips as corrupt). Hosts the checkpoint-write fault
/// site, keyed by the trial index.
class CheckpointWriter {
 public:
  /// Opens `path` for append; throws std::runtime_error when unwritable.
  explicit CheckpointWriter(const std::string& path);

  const std::string& path() const noexcept { return path_; }

  /// Appends one completed trial (counted as kCheckpointTrialsWritten).
  /// Throws FaultInjected when the checkpoint-write site fires for
  /// `key.trial`, and std::runtime_error when the stream fails.
  void append_trial(const CheckpointKey& key, const TrialOutcome& outcome);

 private:
  std::string path_;  // immutable after construction; no guard needed
  core::Mutex mutex_;
  std::ofstream out_ HCSCHED_GUARDED_BY(mutex_);
};

}  // namespace hcsched::sim
