// Batch-mode dynamic mapping — the second dispatch mode of Maheswaran et
// al. 1999 (the paper's reference [14]).
//
// Unlike immediate mode (sim/online.hpp), arriving tasks accumulate in a
// queue and are (re)mapped together at *mapping events*. This
// implementation uses the regular-interval event strategy from [14]: every
// `interval` time units, all queued tasks whose execution has not started
// are remapped by a meta-task heuristic (Min-Min, Max-Min or Sufferage)
// against the machines' current availability.
//
// Simplification (documented): once a task is placed in a mapping event it
// is committed — later events map only tasks that arrived after the event.
// This matches [14]'s behavior for tasks that would have started before the
// next event and keeps machine queues non-preemptive, consistent with the
// paper's one-task-at-a-time machine model.
#pragma once

#include <cstdint>
#include <vector>

#include "heuristics/heuristic.hpp"
#include "sim/online.hpp"

namespace hcsched::sim {

enum class BatchPolicy : std::uint8_t { kMinMin, kMaxMin, kSufferage };

const char* to_string(BatchPolicy policy) noexcept;

struct BatchOnlineConfig {
  BatchPolicy policy = BatchPolicy::kMinMin;
  /// Time between mapping events; the first event fires at this time.
  double interval = 10.0;
};

class BatchOnlineDispatcher {
 public:
  explicit BatchOnlineDispatcher(BatchOnlineConfig config = {});

  /// Dispatches `stream` (arrival-ordered, ids indexing `matrix` rows) over
  /// machines with the given initial availability. Returns per-task records
  /// in commit order plus final machine ready times.
  OnlineResult run(const etc::EtcMatrix& matrix,
                   const std::vector<OnlineTask>& stream,
                   std::vector<double> initial_ready,
                   rng::TieBreaker& ties) const;

  const BatchOnlineConfig& config() const noexcept { return config_; }

 private:
  BatchOnlineConfig config_;
};

}  // namespace hcsched::sim
