#include "sim/fault/fault.hpp"

#include <array>
#include <atomic>
#include <charconv>
#include <cstdlib>

#include "core/thread_annotations.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"

namespace hcsched::sim::fault {

namespace {

constexpr std::array<std::string_view, kNumSites> kSiteNames = {
    "etc-generate",
    "heuristic-map",
    "pool-job-start",
    "checkpoint-write",
};

struct Registry {
  core::Mutex mutex;
  std::array<std::optional<FaultPlan>, kNumSites> plans
      HCSCHED_GUARDED_BY(mutex){};
  /// Bitmask of armed sites; the hot-path check. Relaxed is enough: a
  /// caller racing an arm/disarm may miss the very first decisions, which
  /// is inherent to process-global arming and irrelevant to determinism
  /// (tests arm before running). Plan *contents* are only ever read under
  /// the mutex, so the mask never orders any non-atomic access.
  std::atomic<std::uint32_t> armed_mask{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local std::uint64_t t_fault_key = 0;

/// One-shot environment arming: HCSCHED_FAULT="<spec>[,<spec>...]". Runs
/// during static initialization so every binary (CLI, tests, benches)
/// honors the variable without explicit setup.
const bool g_env_armed = [] {
  const char* env = std::getenv("HCSCHED_FAULT");
  if (env == nullptr) return false;
  std::string_view specs(env);
  bool armed_any = false;
  while (!specs.empty()) {
    const std::size_t comma = specs.find(',');
    const std::string_view one = specs.substr(0, comma);
    if (const auto plan = parse_spec(one)) {
      arm(*plan);
      armed_any = true;
    }
    if (comma == std::string_view::npos) break;
    specs.remove_prefix(comma + 1);
  }
  return armed_any;
}();

}  // namespace

std::string_view to_string(Site site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site> parse_site(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (kSiteNames[i] == name) return static_cast<Site>(i);
  }
  return std::nullopt;
}

FaultInjected::FaultInjected(Site site, std::uint64_t key)
    : std::runtime_error("fault injected at " + std::string(to_string(site)) +
                         " (key " + std::to_string(key) + ")"),
      site_(site),
      key_(key) {}

std::optional<FaultPlan> parse_spec(std::string_view spec) {
  const std::size_t first = spec.find(':');
  if (first == std::string_view::npos) return std::nullopt;
  const auto site = parse_site(spec.substr(0, first));
  if (!site) return std::nullopt;

  std::string_view rest = spec.substr(first + 1);
  const std::size_t second = rest.find(':');
  const std::string_view rate_text = rest.substr(0, second);

  // std::from_chars<double> is not implemented everywhere; strtod on a
  // NUL-terminated copy is portable and strict enough with a full-consume
  // check.
  const std::string rate_copy(rate_text);
  if (rate_copy.empty()) return std::nullopt;
  char* rate_end = nullptr;
  const double rate = std::strtod(rate_copy.c_str(), &rate_end);
  if (rate_end != rate_copy.c_str() + rate_copy.size()) return std::nullopt;
  if (!(rate >= 0.0 && rate <= 1.0)) return std::nullopt;

  std::uint64_t seed = 1;
  if (second != std::string_view::npos) {
    const std::string_view seed_text = rest.substr(second + 1);
    if (seed_text.empty()) return std::nullopt;
    const auto [ptr, ec] = std::from_chars(
        seed_text.data(), seed_text.data() + seed_text.size(), seed);
    if (ec != std::errc{} || ptr != seed_text.data() + seed_text.size()) {
      return std::nullopt;
    }
  }
  return FaultPlan{*site, rate, seed};
}

void arm(const FaultPlan& plan) {
  Registry& r = registry();
  const core::MutexLock lock(r.mutex);
  r.plans[static_cast<std::size_t>(plan.site)] = plan;
  r.armed_mask.fetch_or(1u << static_cast<std::uint32_t>(plan.site),
                        std::memory_order_relaxed);
}

void disarm(Site site) {
  Registry& r = registry();
  const core::MutexLock lock(r.mutex);
  r.plans[static_cast<std::size_t>(site)].reset();
  r.armed_mask.fetch_and(~(1u << static_cast<std::uint32_t>(site)),
                         std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  const core::MutexLock lock(r.mutex);
  for (auto& plan : r.plans) plan.reset();
  r.armed_mask.store(0, std::memory_order_relaxed);
}

std::optional<FaultPlan> armed(Site site) {
  Registry& r = registry();
  const core::MutexLock lock(r.mutex);
  return r.plans[static_cast<std::size_t>(site)];
}

bool any_armed() noexcept {
  return registry().armed_mask.load(std::memory_order_relaxed) != 0;
}

double decision_value(const FaultPlan& plan, std::uint64_t key) noexcept {
  // Two SplitMix64 rounds: the first decorrelates (seed, site), the second
  // folds in the key. Depends on nothing else, so the decision for a given
  // (plan, key) is identical on every thread, run, and platform.
  rng::SplitMix64 salt(plan.seed ^
                       (static_cast<std::uint64_t>(plan.site) + 1) *
                           0xA24BAED4963EE407ULL);
  rng::SplitMix64 mix(salt.next() ^ key);
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

bool should_inject(Site site, std::uint64_t key) noexcept {
  Registry& r = registry();
  if ((r.armed_mask.load(std::memory_order_relaxed) &
       (1u << static_cast<std::uint32_t>(site))) == 0) {
    return false;
  }
  std::optional<FaultPlan> plan;
  {
    const core::MutexLock lock(r.mutex);
    plan = r.plans[static_cast<std::size_t>(site)];
  }
  if (!plan) return false;  // raced a disarm
  if (plan->rate >= 1.0) return true;
  if (plan->rate <= 0.0) return false;
  return decision_value(*plan, key) < plan->rate;
}

void maybe_inject(Site site, std::uint64_t key) {
  if (!any_armed()) return;  // the disarmed fast path
  if (!should_inject(site, key)) return;
  HCSCHED_COUNT(obs::Counter::kFaultsInjected);
  HCSCHED_TRACE_EVENT("fault.injected",
                      {{"site", obs::JsonValue(to_string(site))},
                       {"key", obs::JsonValue(key)}});
  throw FaultInjected(site, key);
}

void maybe_inject_here(Site site) { maybe_inject(site, t_fault_key); }

std::uint64_t current_key() noexcept { return t_fault_key; }

ScopedKey::ScopedKey(std::uint64_t key) noexcept : previous_(t_fault_key) {
  t_fault_key = key;
}

ScopedKey::~ScopedKey() { t_fault_key = previous_; }

ScopedFault::ScopedFault(const FaultPlan& plan)
    : site_(plan.site), previous_(armed(plan.site)) {
  arm(plan);
}

ScopedFault::~ScopedFault() {
  if (previous_) {
    arm(*previous_);
  } else {
    disarm(site_);
  }
}

}  // namespace hcsched::sim::fault
