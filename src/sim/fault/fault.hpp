// Deterministic fault injection for the Monte-Carlo study engine.
//
// A small registry of *named injection points* (Site) sits on the paths a
// long-running study depends on: ETC generation, the heuristic-map entry
// point, thread-pool job start, and checkpoint writes. Each site can be
// armed with a FaultPlan {rate, seed}; an armed site throws a typed
// FaultInjected error when its deterministic decision function fires. The
// decision depends only on (site, plan seed, key) — never on wall clock,
// thread identity, or call order — so a faulty run is exactly reproducible
// and tests can predict the injected set up front.
//
// Arming:
//   * API        — fault::arm({Site::kHeuristicMap, 0.01, 42}) or the RAII
//                  ScopedFault used by tests;
//   * environment — HCSCHED_FAULT="<site>:<rate>[:<seed>]", comma-separated
//                  for several sites, read once at process start, e.g.
//                  HCSCHED_FAULT=heuristic-map:0.01:42
//
// The hot path pays one relaxed atomic load when nothing is armed (the
// common case); arming is process-global and mutex-guarded. Keys are
// supplied by the caller (the study uses the trial index); sites buried in
// lower layers (the Heuristic NVI wrapper) read the thread-local key
// installed by fault::ScopedKey.
//
// This header is dependency-light by design (rng + stdlib only) so any
// layer — heuristics, sim, tools — may include it without cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hcsched::sim::fault {

/// Registered injection points. docs/ROBUSTNESS.md carries the registry
/// table; add new sites at the end and extend kSiteNames in fault.cpp.
enum class Site : std::size_t {
  kEtcGenerate = 0,   ///< per-trial ETC matrix generation
  kHeuristicMap,      ///< Heuristic::map / map_seeded NVI entry
  kPoolJobStart,      ///< ThreadPool job about to execute (worker loss)
  kCheckpointWrite,   ///< CheckpointWriter::append_trial
  kCount
};

inline constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

/// Stable kebab-case name (the HCSCHED_FAULT / --fault spelling).
std::string_view to_string(Site site) noexcept;

/// Inverse of to_string; nullopt for unknown names.
std::optional<Site> parse_site(std::string_view name) noexcept;

/// The typed error an armed site throws. what() carries site and key.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(Site site, std::uint64_t key);

  Site site() const noexcept { return site_; }
  std::uint64_t key() const noexcept { return key_; }

 private:
  Site site_;
  std::uint64_t key_;
};

struct FaultPlan {
  Site site = Site::kHeuristicMap;
  /// Injection probability per decision in [0, 1]; >= 1 fires always,
  /// <= 0 never.
  double rate = 0.0;
  /// Seed of the decision function (independent of every study RNG stream).
  std::uint64_t seed = 1;
};

/// Parses "<site>:<rate>[:<seed>]" (seed defaults to 1); nullopt on any
/// syntax error, unknown site, or rate outside [0, 1].
std::optional<FaultPlan> parse_spec(std::string_view spec);

/// Arms `plan.site` (replacing any previous plan for that site).
void arm(const FaultPlan& plan);
/// Disarms one site / every site.
void disarm(Site site);
void disarm_all();
/// The plan currently armed at `site`, if any.
std::optional<FaultPlan> armed(Site site);
/// True when at least one site is armed (the hot-path fast check).
bool any_armed() noexcept;

/// The deterministic decision value in [0, 1) for (plan.seed, site, key).
double decision_value(const FaultPlan& plan, std::uint64_t key) noexcept;

/// Whether an injection would fire at `site` for `key` given the current
/// arming (false when disarmed). Pure given the armed state.
bool should_inject(Site site, std::uint64_t key) noexcept;

/// Throws FaultInjected when should_inject(site, key); also counts the
/// injection and emits a "fault.injected" trace event. No-op when disarmed.
void maybe_inject(Site site, std::uint64_t key);

/// maybe_inject() keyed by the thread's current ScopedKey (sites that
/// cannot see the study's trial index).
void maybe_inject_here(Site site);

/// The calling thread's fault key (0 outside any ScopedKey).
std::uint64_t current_key() noexcept;

/// RAII: installs `key` as the calling thread's fault key (the study
/// installs the trial index around each trial), restoring the previous key
/// on exit.
class ScopedKey {
 public:
  explicit ScopedKey(std::uint64_t key) noexcept;
  ~ScopedKey();
  ScopedKey(const ScopedKey&) = delete;
  ScopedKey& operator=(const ScopedKey&) = delete;

 private:
  std::uint64_t previous_;
};

/// RAII for tests and the CLI: arms `plan` on construction and restores the
/// site's previous arming (or disarmed state) on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan);
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Site site_;
  std::optional<FaultPlan> previous_;
};

}  // namespace hcsched::sim::fault
