// Fixed-size thread pool for the Monte-Carlo harness.
//
// Workers pull std::move_only_function jobs from one mutex-guarded queue —
// contention is negligible because the harness submits coarse trial-sized
// jobs. parallel_for_chunks statically splits an index range into one chunk
// per worker (trials are balanced by construction: each runs the same
// heuristics on same-sized instances). Exceptions thrown by jobs are
// captured into the future returned by submit(); parallel_for_chunks
// rethrows the first one.
//
// Robustness hooks (docs/ROBUSTNESS.md):
//   * submit() hosts the pool-job-start fault site: an armed
//     fault::Site::kPoolJobStart plan (keyed by a process-wide submit
//     sequence number) makes the job fail before its body runs, modelling a
//     lost worker; the error flows through the future like any job error.
//   * parallel_for_chunks accepts an optional CancelToken. A cancelled
//     token makes not-yet-started chunk bodies no-ops, and is installed as
//     the worker thread's current token (core::ScopedCancel) for the body's
//     duration, so code deep inside a chunk — the anytime heuristics — can
//     poll core::cancellation_requested() without any explicit plumbing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel.hpp"

namespace hcsched::sim {

class ThreadPool {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a job; the future reports completion or the job's exception.
  std::future<void> submit(std::function<void()> job);

  /// Runs body(begin, end) over disjoint chunks of [0, n) across the pool,
  /// blocking until every chunk has finished (even after a failure — queued
  /// chunks reference `body`, so no job may outlive this call). The first
  /// chunk exception is rethrown once all chunks are done.
  ///
  /// `cancel` (borrowed; may be null) is installed as each chunk's current
  /// token; a chunk whose body has not started when the token fires is
  /// skipped outright. Cancellation is cooperative and never raises — the
  /// caller inspects the token afterwards.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body,
      const core::CancelToken* cancel = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_{};
  std::deque<std::packaged_task<void()>> queue_{};
  std::mutex mutex_{};
  std::condition_variable cv_{};
  bool stopping_ = false;
};

}  // namespace hcsched::sim
