// Fixed-size thread pool for the Monte-Carlo harness.
//
// Workers pull std::move_only_function jobs from one mutex-guarded queue —
// contention is negligible because the harness submits coarse trial-sized
// jobs. parallel_for_chunks statically splits an index range into one chunk
// per worker (trials are balanced by construction: each runs the same
// heuristics on same-sized instances). Exceptions thrown by jobs are
// captured into the future returned by submit(); parallel_for_chunks
// rethrows the first one.
//
// Lock discipline is compiler-checked: queue state lives behind the
// annotated core::Mutex capability (core/thread_annotations.hpp) and every
// access path is proven under -Wthread-safety by the `thread-safety`
// preset; tests/compile_fail/ pins that an unlocked call to a
// REQUIRES(queue_mutex_) member is rejected.
//
// Robustness hooks (docs/ROBUSTNESS.md):
//   * submit() hosts the pool-job-start fault site: an armed
//     fault::Site::kPoolJobStart plan (keyed by a process-wide submit
//     sequence number) makes the job fail before its body runs, modelling a
//     lost worker; the error flows through the future like any job error.
//   * parallel_for_chunks accepts an optional CancelToken. A cancelled
//     token makes not-yet-started chunk bodies no-ops, and is installed as
//     the worker thread's current token (core::ScopedCancel) for the body's
//     duration, so code deep inside a chunk — the anytime heuristics — can
//     poll core::cancellation_requested() without any explicit plumbing.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/thread_annotations.hpp"

namespace hcsched::sim {

class ThreadPool {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a job; the future reports completion or the job's exception.
  std::future<void> submit(std::function<void()> job)
      HCSCHED_EXCLUDES(queue_mutex_);

  /// Runs body(begin, end) over disjoint chunks of [0, n) across the pool,
  /// blocking until every chunk has finished (even after a failure — queued
  /// chunks reference `body`, so no job may outlive this call). The first
  /// chunk exception is rethrown once all chunks are done.
  ///
  /// `cancel` (borrowed; may be null) is installed as each chunk's current
  /// token; a chunk whose body has not started when the token fires is
  /// skipped outright. Cancellation is cooperative and never raises — the
  /// caller inspects the token afterwards.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body,
      const core::CancelToken* cancel = nullptr)
      HCSCHED_EXCLUDES(queue_mutex_);

 private:
  void worker_loop() HCSCHED_EXCLUDES(queue_mutex_);

  /// Appends a task to the queue (caller notifies the condvar after
  /// releasing the lock, keeping the wakeup off the critical section).
  void enqueue_locked(std::packaged_task<void()> task)
      HCSCHED_REQUIRES(queue_mutex_);

  /// Whether the pool is stopping with an empty queue — the worker exit
  /// condition.
  bool drained_locked() const HCSCHED_REQUIRES(queue_mutex_);

  // Compile-fail harness (tests/compile_fail/): proves the analysis rejects
  // an unlocked call to the REQUIRES members above.
  friend struct ThreadPoolThreadSafetyProbe;

  std::vector<std::thread> workers_{};
  core::Mutex queue_mutex_;
  std::deque<std::packaged_task<void()>> queue_
      HCSCHED_GUARDED_BY(queue_mutex_){};
  core::CondVar cv_{};
  bool stopping_ HCSCHED_GUARDED_BY(queue_mutex_) = false;
};

}  // namespace hcsched::sim
