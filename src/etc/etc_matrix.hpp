// EtcMatrix: estimated-time-to-compute matrix (paper §2).
//
// Row t, column m holds the estimated time to compute task t on machine m.
// The matrix is dense, row-major, immutable in normal use after
// construction. Task and machine identifiers throughout the library are the
// row/column indices of this matrix; Problem objects select subsets of them,
// which is how the iterative technique removes machines without copying or
// renumbering the ETC data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/check.hpp"

namespace hcsched::etc {

using TaskId = std::int32_t;
using MachineId = std::int32_t;

class EtcMatrix {
 public:
  EtcMatrix() = default;

  /// Zero-initialized tasks x machines matrix.
  EtcMatrix(std::size_t num_tasks, std::size_t num_machines)
      : tasks_(num_tasks),
        machines_(num_machines),
        values_(num_tasks * num_machines, 0.0) {}

  /// Construction from row data; every row must have the same length.
  static EtcMatrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);
  static EtcMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t num_tasks() const noexcept { return tasks_; }
  std::size_t num_machines() const noexcept { return machines_; }
  bool empty() const noexcept { return values_.empty(); }

  double at(TaskId task, MachineId machine) const {
    return values_[index(task, machine)];
  }
  double& at(TaskId task, MachineId machine) {
    return values_[index(task, machine)];
  }

  /// The ETC row of one task across all machines. Unlike at(), this is an
  /// internal hot-path accessor: callers must pass an in-range task id.
  std::span<const double> row(TaskId task) const {
    HCSCHED_PRECONDITION(
        task >= 0 && static_cast<std::size_t>(task) < tasks_, "task id ",
        task, " outside 0..", tasks_);
    return std::span<const double>(values_)
        .subspan(static_cast<std::size_t>(task) * machines_, machines_);
  }

  std::span<const double> data() const noexcept { return values_; }

  /// Sum, min and max over all entries (used by generators' self-checks).
  double total() const noexcept;
  double min_value() const noexcept;
  double max_value() const noexcept;

  bool operator==(const EtcMatrix& other) const = default;

 private:
  std::size_t index(TaskId task, MachineId machine) const {
    if (task < 0 || static_cast<std::size_t>(task) >= tasks_ || machine < 0 ||
        static_cast<std::size_t>(machine) >= machines_) {
      throw std::out_of_range("EtcMatrix: index (" + std::to_string(task) +
                              ", " + std::to_string(machine) +
                              ") outside " + std::to_string(tasks_) + "x" +
                              std::to_string(machines_));
    }
    return static_cast<std::size_t>(task) * machines_ +
           static_cast<std::size_t>(machine);
  }

  std::size_t tasks_ = 0;
  std::size_t machines_ = 0;
  std::vector<double> values_{};
};

}  // namespace hcsched::etc
