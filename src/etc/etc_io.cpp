#include "etc/etc_io.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hcsched::etc {

void write_csv(std::ostream& os, const EtcMatrix& m) {
  os << m.num_tasks() << ',' << m.num_machines() << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t t = 0; t < m.num_tasks(); ++t) {
    const auto row = m.row(static_cast<TaskId>(t));
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j != 0) os << ',';
      os << row[j];
    }
    os << '\n';
  }
}

EtcMatrix read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("EtcMatrix CSV: missing header");
  }
  std::size_t tasks = 0;
  std::size_t machines = 0;
  {
    std::istringstream header(line);
    char comma = 0;
    if (!(header >> tasks >> comma >> machines) || comma != ',') {
      throw std::runtime_error("EtcMatrix CSV: malformed header '" + line +
                               "'");
    }
  }
  EtcMatrix m(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    if (!std::getline(is, line)) {
      throw std::runtime_error("EtcMatrix CSV: truncated at row " +
                               std::to_string(t));
    }
    std::istringstream row(line);
    std::string cell;
    for (std::size_t j = 0; j < machines; ++j) {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("EtcMatrix CSV: short row " +
                                 std::to_string(t));
      }
      m.at(static_cast<TaskId>(t), static_cast<MachineId>(j)) =
          std::stod(cell);
    }
  }
  return m;
}

std::string to_csv(const EtcMatrix& m) {
  std::ostringstream os;
  write_csv(os, m);
  return os.str();
}

EtcMatrix from_csv(const std::string& text) {
  std::istringstream is(text);
  return read_csv(is);
}

}  // namespace hcsched::etc
