// Coefficient-of-variation-based (CVB) ETC generation (Ali, Siegel,
// Maheswaran, Hensgen & Ali 2000 — the method used throughout the research
// group's later studies, cited as [1] in the paper).
//
// Task heterogeneity V_task and machine heterogeneity V_mach are expressed
// as coefficients of variation of gamma distributions:
//   alpha_task = 1 / V_task^2,          beta_task = mean_task / alpha_task
//   q(t)      ~ Gamma(alpha_task, beta_task)                (per-task mean)
//   alpha_mach = 1 / V_mach^2
//   ETC(t, m) ~ Gamma(alpha_mach, q(t) / alpha_mach)
// giving E[ETC(t, .)] = q(t) and CoV V_mach within a row.
#pragma once

#include "etc/etc_matrix.hpp"
#include "rng/rng.hpp"

namespace hcsched::etc {

struct CvbParams {
  std::size_t num_tasks = 0;
  std::size_t num_machines = 0;
  double mean_task_time = 1000.0;  ///< mean of the per-task baseline q(t)
  double v_task = 0.6;             ///< task-heterogeneity CoV (> 0)
  double v_machine = 0.6;          ///< machine-heterogeneity CoV (> 0)
};

class CvbEtcGenerator {
 public:
  explicit CvbEtcGenerator(CvbParams params) : params_(params) {}

  EtcMatrix generate(rng::Rng& rng) const;

  const CvbParams& params() const noexcept { return params_; }

 private:
  CvbParams params_;
};

}  // namespace hcsched::etc
