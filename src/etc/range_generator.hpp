// Range-based ETC generation (Braun et al. 2001, cited as [3] in the paper).
//
// For each task t a baseline tau(t) ~ U[1, R_task] is drawn; entry (t, m) is
// tau(t) * U[1, R_mach]. R_task controls task heterogeneity and R_mach
// machine heterogeneity. The classic HiHi/HiLo/LoHi/LoLo regimes from the
// literature are provided as presets.
#pragma once

#include "etc/etc_matrix.hpp"
#include "rng/rng.hpp"

namespace hcsched::etc {

struct RangeParams {
  std::size_t num_tasks = 0;
  std::size_t num_machines = 0;
  double task_range = 100.0;     ///< R_task: baselines drawn from U[1, R_task]
  double machine_range = 100.0;  ///< R_mach: multipliers from U[1, R_mach]
};

/// The four canonical heterogeneity regimes of Braun et al.
enum class Heterogeneity : std::uint8_t { kHiHi, kHiLo, kLoHi, kLoLo };

/// Preset ranges: high = 3000 (tasks) / 1000 (machines), low = 100 / 10.
RangeParams range_preset(Heterogeneity h, std::size_t num_tasks,
                         std::size_t num_machines);

class RangeEtcGenerator {
 public:
  explicit RangeEtcGenerator(RangeParams params) : params_(params) {}

  EtcMatrix generate(rng::Rng& rng) const;

  const RangeParams& params() const noexcept { return params_; }

 private:
  RangeParams params_;
};

}  // namespace hcsched::etc
