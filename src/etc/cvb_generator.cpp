#include "etc/cvb_generator.hpp"

#include <stdexcept>

namespace hcsched::etc {

EtcMatrix CvbEtcGenerator::generate(rng::Rng& rng) const {
  if (params_.v_task <= 0.0 || params_.v_machine <= 0.0 ||
      params_.mean_task_time <= 0.0) {
    throw std::invalid_argument("CvbEtcGenerator: parameters must be > 0");
  }
  const double alpha_task = 1.0 / (params_.v_task * params_.v_task);
  const double beta_task = params_.mean_task_time / alpha_task;
  const double alpha_mach = 1.0 / (params_.v_machine * params_.v_machine);

  EtcMatrix m(params_.num_tasks, params_.num_machines);
  for (std::size_t t = 0; t < params_.num_tasks; ++t) {
    const double q = rng.gamma(alpha_task, beta_task);
    const double beta_mach = q / alpha_mach;
    for (std::size_t j = 0; j < params_.num_machines; ++j) {
      m.at(static_cast<TaskId>(t), static_cast<MachineId>(j)) =
          rng.gamma(alpha_mach, beta_mach);
    }
  }
  return m;
}

}  // namespace hcsched::etc
