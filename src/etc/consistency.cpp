#include "etc/consistency.hpp"

#include <algorithm>
#include <vector>

namespace hcsched::etc {

namespace {

/// Checks that the given columns are mutually consistently ordered: there is
/// a single permutation of `columns` that sorts every row.
bool columns_consistent(const EtcMatrix& m,
                        const std::vector<std::size_t>& columns) {
  if (m.num_tasks() == 0 || columns.size() < 2) return true;
  // Order induced by the first row.
  std::vector<std::size_t> order = columns;
  const auto row0 = m.row(0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return row0[a] < row0[b]; });
  for (std::size_t t = 1; t < m.num_tasks(); ++t) {
    const auto row = m.row(static_cast<TaskId>(t));
    for (std::size_t i = 1; i < order.size(); ++i) {
      if (row[order[i - 1]] > row[order[i]]) return false;
    }
  }
  return true;
}

}  // namespace

EtcMatrix shape_consistency(const EtcMatrix& m, Consistency c) {
  EtcMatrix out = m;
  const std::size_t machines = m.num_machines();
  if (machines < 2) return out;
  switch (c) {
    case Consistency::kInconsistent:
      break;
    case Consistency::kConsistent: {
      std::vector<double> row(machines);
      for (std::size_t t = 0; t < m.num_tasks(); ++t) {
        const auto src = m.row(static_cast<TaskId>(t));
        row.assign(src.begin(), src.end());
        std::sort(row.begin(), row.end());
        for (std::size_t j = 0; j < machines; ++j) {
          out.at(static_cast<TaskId>(t), static_cast<MachineId>(j)) = row[j];
        }
      }
      break;
    }
    case Consistency::kSemiConsistent: {
      std::vector<double> evens;
      for (std::size_t t = 0; t < m.num_tasks(); ++t) {
        const auto src = m.row(static_cast<TaskId>(t));
        evens.clear();
        for (std::size_t j = 0; j < machines; j += 2) evens.push_back(src[j]);
        std::sort(evens.begin(), evens.end());
        std::size_t k = 0;
        for (std::size_t j = 0; j < machines; j += 2) {
          out.at(static_cast<TaskId>(t), static_cast<MachineId>(j)) =
              evens[k++];
        }
      }
      break;
    }
  }
  return out;
}

bool is_consistent(const EtcMatrix& m) {
  std::vector<std::size_t> all(m.num_machines());
  for (std::size_t j = 0; j < all.size(); ++j) all[j] = j;
  return columns_consistent(m, all);
}

bool is_semi_consistent(const EtcMatrix& m) {
  std::vector<std::size_t> evens;
  for (std::size_t j = 0; j < m.num_machines(); j += 2) evens.push_back(j);
  return columns_consistent(m, evens);
}

const char* to_string(Consistency c) noexcept {
  switch (c) {
    case Consistency::kInconsistent:
      return "inconsistent";
    case Consistency::kSemiConsistent:
      return "semi-consistent";
    case Consistency::kConsistent:
      return "consistent";
  }
  return "?";
}

}  // namespace hcsched::etc
