#include "etc/etc_matrix.hpp"

#include <algorithm>

namespace hcsched::etc {

EtcMatrix EtcMatrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  std::vector<std::vector<double>> copy;
  copy.reserve(rows.size());
  for (const auto& r : rows) copy.emplace_back(r);
  return from_rows(copy);
}

EtcMatrix EtcMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  EtcMatrix m;
  m.tasks_ = rows.size();
  m.machines_ = rows.empty() ? 0 : rows.front().size();
  m.values_.reserve(m.tasks_ * m.machines_);
  for (const auto& r : rows) {
    if (r.size() != m.machines_) {
      throw std::invalid_argument("EtcMatrix::from_rows: ragged rows");
    }
    m.values_.insert(m.values_.end(), r.begin(), r.end());
  }
  HCSCHED_INVARIANT(m.values_.size() == m.tasks_ * m.machines_,
                    "dense storage holds ", m.values_.size(), " cells for a ",
                    m.tasks_, "x", m.machines_, " matrix");
  return m;
}

double EtcMatrix::total() const noexcept {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double EtcMatrix::min_value() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double EtcMatrix::max_value() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace hcsched::etc
