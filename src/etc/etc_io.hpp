// CSV-style serialization of ETC matrices.
//
// Format: one header line `tasks,machines`, then one comma-separated row per
// task. Round-trips exactly via max_digits10 formatting.
#pragma once

#include <iosfwd>
#include <string>

#include "etc/etc_matrix.hpp"

namespace hcsched::etc {

void write_csv(std::ostream& os, const EtcMatrix& m);
EtcMatrix read_csv(std::istream& is);

std::string to_csv(const EtcMatrix& m);
EtcMatrix from_csv(const std::string& text);

}  // namespace hcsched::etc
