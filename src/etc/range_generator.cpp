#include "etc/range_generator.hpp"

#include <stdexcept>

namespace hcsched::etc {

RangeParams range_preset(Heterogeneity h, std::size_t num_tasks,
                         std::size_t num_machines) {
  RangeParams p;
  p.num_tasks = num_tasks;
  p.num_machines = num_machines;
  switch (h) {
    case Heterogeneity::kHiHi:
      p.task_range = 3000.0;
      p.machine_range = 1000.0;
      break;
    case Heterogeneity::kHiLo:
      p.task_range = 3000.0;
      p.machine_range = 10.0;
      break;
    case Heterogeneity::kLoHi:
      p.task_range = 100.0;
      p.machine_range = 1000.0;
      break;
    case Heterogeneity::kLoLo:
      p.task_range = 100.0;
      p.machine_range = 10.0;
      break;
  }
  return p;
}

EtcMatrix RangeEtcGenerator::generate(rng::Rng& rng) const {
  if (params_.task_range < 1.0 || params_.machine_range < 1.0) {
    throw std::invalid_argument("RangeEtcGenerator: ranges must be >= 1");
  }
  EtcMatrix m(params_.num_tasks, params_.num_machines);
  for (std::size_t t = 0; t < params_.num_tasks; ++t) {
    const double baseline = rng.uniform(1.0, params_.task_range);
    for (std::size_t j = 0; j < params_.num_machines; ++j) {
      m.at(static_cast<TaskId>(t), static_cast<MachineId>(j)) =
          baseline * rng.uniform(1.0, params_.machine_range);
    }
  }
  return m;
}

}  // namespace hcsched::etc
