// ETC consistency shaping (Braun et al. 2001 taxonomy).
//
// * Consistent: if machine a is faster than machine b for one task it is
//   faster for every task — produced by sorting every row with a shared
//   column order (here: ascending within each row, which after sorting makes
//   column 0 the universally fastest machine).
// * Semi-consistent: only the even-indexed columns are mutually consistent;
//   odd columns keep their raw (inconsistent) values.
// * Inconsistent: the raw generated matrix.
#pragma once

#include "etc/etc_matrix.hpp"

namespace hcsched::etc {

enum class Consistency : std::uint8_t {
  kInconsistent,
  kSemiConsistent,
  kConsistent,
};

/// Returns a copy of `m` shaped to the requested consistency class.
EtcMatrix shape_consistency(const EtcMatrix& m, Consistency c);

/// True when every pair of columns is consistently ordered across all rows.
bool is_consistent(const EtcMatrix& m);

/// True when the even-indexed columns are consistently ordered across rows.
bool is_semi_consistent(const EtcMatrix& m);

/// Human-readable label ("consistent", ...).
const char* to_string(Consistency c) noexcept;

}  // namespace hcsched::etc
