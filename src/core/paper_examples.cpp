#include "core/paper_examples.hpp"

#include <cmath>

#include "heuristics/registry.hpp"

namespace hcsched::core {

namespace {

std::shared_ptr<const etc::EtcMatrix> matrix_of(
    std::initializer_list<std::initializer_list<double>> rows) {
  return std::make_shared<const etc::EtcMatrix>(
      etc::EtcMatrix::from_rows(rows));
}

}  // namespace

PaperExample minmin_example() {
  PaperExample ex;
  ex.id = "minmin";
  ex.table_refs = "Tables 1-3";
  ex.figure_refs = "Figures 3-4";
  ex.heuristic = "Min-Min";
  // Reconstruction: original mapping (deterministic ties) completes at
  // (5, 2, 4) with makespan machine m0 = {t0}; breaking the two ties the
  // other way in the first iterative mapping yields (1, 6) on m1/m2 — the
  // paper's "5 (same), 1, 6", makespan 5 -> 6.
  ex.matrix = matrix_of({
      {5, 9, 9},  // t0 -> m0 (the makespan machine's task)
      {9, 1, 2},  // t1: phase-2 tie with t2; m1/m2 tie once m1 is busy
      {9, 1, 9},  // t2
      {9, 9, 4},  // t3
  });
  // Tie 1 (iteration 0, phase 2): {t1, t2} -> t1 (deterministic outcome).
  // Tie 2 (iteration 1, phase 2): {t1, t2} -> t2 (the random outcome).
  // Tie 3 (iteration 1, phase 1 for t1): {m1, m2} -> m2.
  ex.tie_script = {0, 1, 1};
  ex.expected_original_ct = {5, 2, 4};
  ex.expected_final_ct = {5, 1, 6};
  ex.expected_original_makespan = 5;
  ex.expected_final_makespan = 6;
  ex.notes =
      "Random tie-breaking makes Min-Min's makespan increase (paper §3.2).";
  return ex;
}

PaperExample mct_example() {
  PaperExample ex;
  ex.id = "mct";
  ex.table_refs = "Tables 4-6";
  ex.figure_refs = "Figures 6-7";
  ex.heuristic = "MCT";
  // Reconstruction: mapping order t0..t3. t0 ties between m1 and m2; the
  // original (deterministic) mapping puts it on m1 giving completions
  // (4, 3, 3); re-breaking the tie to m2 in the first iterative mapping
  // gives (1, 5) — the paper's "4 (same), 1, 5", makespan 4 -> 5.
  ex.matrix = matrix_of({
      {9, 2, 2},  // t0: the tied task
      {4, 9, 9},  // t1 -> m0 (the makespan machine's task)
      {9, 1, 9},  // t2
      {9, 9, 3},  // t3
  });
  ex.tie_script = {0, 1};  // iteration 0: t0 -> m1; iteration 1: t0 -> m2
  ex.expected_original_ct = {4, 3, 3};
  ex.expected_final_ct = {4, 1, 5};
  ex.expected_original_makespan = 4;
  ex.expected_final_makespan = 5;
  ex.notes =
      "Random tie-breaking makes MCT's makespan increase (paper §3.3).";
  return ex;
}

PaperExample met_example() {
  PaperExample ex = mct_example();  // the paper reuses Table 4's matrix
  ex.id = "met";
  ex.table_refs = "Tables 4, 7-8";
  ex.figure_refs = "Figures 9-10";
  ex.heuristic = "MET";
  // Same tie structure: t0 has two minimum-execution-time machines.
  ex.tie_script = {0, 1};
  ex.expected_original_ct = {4, 3, 3};
  ex.expected_final_ct = {4, 1, 5};
  ex.expected_original_makespan = 4;
  ex.expected_final_makespan = 5;
  ex.notes =
      "Random tie-breaking makes MET's makespan increase (paper §3.4).";
  return ex;
}

PaperExample swa_example() {
  PaperExample ex;
  ex.id = "swa";
  ex.table_refs = "Tables 9-11";
  ex.figure_refs = "Figures 11-12";
  ex.heuristic = "SWA";
  // Reconstruction matching the paper's BI traces exactly:
  //   original:   BI = x, 0, 0, 1/3, 2/3; modes MCT,MCT,MCT,MCT,MET;
  //               completions (6, 5, 5), makespan machine m0 = {t0}.
  //   iteration 1: BI = x, 0, 1/2, 4/13; modes MCT,MCT,MET,MCT;
  //               completions (4, 6.5) on m1/m2 -> makespan 6 -> 6.5.
  // Thresholds: high 0.49 (from the paper), low 0.35 (OCR-damaged; any
  // value in (4/13, 0.49) reproduces the trace — DESIGN.md §4).
  ex.matrix = matrix_of({
      {6, 7, 7},      // t0 -> m0
      {9, 2, 5},      // t1
      {9, 5, 4},      // t2
      {9, 3, 2.5},    // t3: MET machine flips to m2 once m0 is gone
      {9, 2, 1},      // t4
  });
  ex.tie_script = {};  // deterministic ties throughout
  ex.expected_original_ct = {6, 5, 5};
  ex.expected_final_ct = {6, 4, 6.5};
  ex.expected_original_makespan = 6;
  ex.expected_final_makespan = 6.5;
  ex.notes =
      "SWA's makespan increases even with deterministic ties (paper §3.5): "
      "removing the makespan machine changes the balance-index trajectory.";
  return ex;
}

PaperExample kpb_example() {
  PaperExample ex;
  ex.id = "kpb";
  ex.table_refs = "Tables 12-14";
  ex.figure_refs = "Figures 15-16";
  ex.heuristic = "KPB";
  // Reconstruction: k = 70%. With 3 machines the subset holds the best two
  // machines; original completions (6, 5, 5.5), makespan machine m0 = {t0}.
  // With 2 machines the subset degenerates to one machine (MET behavior):
  // every remaining task chases its best ETC, piling (7, 3) onto m1/m2 —
  // makespan 6 -> 7 with deterministic ties.
  ex.matrix = matrix_of({
      {6, 8, 9},      // t0 -> m0
      {9, 2, 7},      // t1
      {9, 7, 3},      // t2
      {9, 3, 4},      // t3
      {9, 2, 2.5},    // t4
  });
  ex.tie_script = {};
  ex.expected_original_ct = {6, 5, 5.5};
  ex.expected_final_ct = {6, 7, 3};
  ex.expected_original_makespan = 6;
  ex.expected_final_makespan = 7;
  ex.notes =
      "KPB's makespan increases even with deterministic ties (paper §3.6): "
      "the k-percent subset shrinks to a single machine.";
  return ex;
}

PaperExample sufferage_example() {
  PaperExample ex;
  ex.id = "sufferage";
  ex.table_refs = "Tables 15-17";
  ex.figure_refs = "Figures 18-19";
  ex.heuristic = "Sufferage";
  // The paper's 9x3 matrix did not survive transcription; this is a witness
  // of the same shape found by core/witness search (seed 1, 89th sampled
  // matrix) that exhibits the same phenomenon: a deterministic-tie makespan
  // increase across iterations. Expected values were measured from this
  // implementation and locked in as a regression oracle (paper reported
  // 10/9.5/9.5 -> 10.5; this witness gives 8/8.5/7 -> 10/8.5/5).
  ex.matrix = matrix_of({
      {8, 1, 3.5},
      {9, 7, 4},
      {7, 1.5, 7},
      {1, 1, 9},
      {7, 6, 5},
      {9, 6, 1},
      {2, 1, 2},
      {6, 6, 5},
      {1, 9, 7},
  });
  ex.tie_script = {};
  ex.expected_original_ct = {8, 8.5, 7};
  ex.expected_final_ct = {10, 8.5, 5};
  ex.expected_original_makespan = 8.5;
  ex.expected_final_makespan = 10;
  ex.notes =
      "Sufferage's makespan can increase even with deterministic ties "
      "(paper §3.7); matrix regenerated by witness search, paper values "
      "unrecoverable from the OCR.";
  return ex;
}

std::vector<PaperExample> all_paper_examples() {
  return {minmin_example(), mct_example(),      met_example(),
          swa_example(),    kpb_example(),      sufferage_example()};
}

IterativeResult run_paper_example(const PaperExample& example) {
  const auto heuristic = heuristics::make_heuristic(example.heuristic);
  const Problem problem = Problem::full(*example.matrix);
  IterativeMinimizer minimizer{IterativeOptions{.use_seeding = false}};
  if (example.tie_script.empty()) {
    TieBreaker deterministic;
    return minimizer.run(*heuristic, problem, deterministic);
  }
  TieBreaker scripted(example.tie_script);
  return minimizer.run(*heuristic, problem, scripted);
}

bool example_matches(const PaperExample& example,
                     const IterativeResult& result, double epsilon) {
  if (example.expected_original_ct.empty()) return true;  // measure-only
  const auto& original = result.original().schedule;
  for (std::size_t m = 0; m < example.expected_original_ct.size(); ++m) {
    if (std::fabs(original.completion_time(static_cast<MachineId>(m)) -
                  example.expected_original_ct[m]) > epsilon) {
      return false;
    }
  }
  for (std::size_t m = 0; m < example.expected_final_ct.size(); ++m) {
    if (std::fabs(result.final_finish_of(static_cast<MachineId>(m)) -
                  example.expected_final_ct[m]) > epsilon) {
      return false;
    }
  }
  return std::fabs(result.original().makespan -
                   example.expected_original_makespan) <= epsilon &&
         std::fabs(result.final_makespan() -
                   example.expected_final_makespan) <= epsilon;
}

}  // namespace hcsched::core
