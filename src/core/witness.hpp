// Witness search: finds small ETC matrices on which a heuristic's makespan
// *increases* under the iterative technique — the phenomenon the paper's
// examples demonstrate (Tables 3, 6, 8, 11, 14, 17).
//
// Matrices are sampled with small integer (optionally half-integer) entries
// so that ties actually occur and witnesses are human-readable; each
// candidate is run through the iterative technique and kept when the final
// (effective) makespan exceeds the original one. Used to (a) regenerate the
// paper's Sufferage example, whose ETC matrix did not survive the OCR, and
// (b) empirically measure how common the phenomenon is (bench EXT-2/EXT-6).
#pragma once

#include <memory>
#include <optional>

#include "core/iterative.hpp"
#include "rng/rng.hpp"
#include "sim/thread_pool.hpp"

namespace hcsched::core {

struct WitnessSpec {
  std::size_t num_tasks = 6;
  std::size_t num_machines = 3;
  int min_etc = 1;
  int max_etc = 9;
  /// Allow k + 0.5 values (the paper's SWA/Sufferage examples use 2.5/6.5).
  bool half_integers = false;
  /// Tie policy used for BOTH the original and the iterative mappings;
  /// kDeterministic searches for the paper's "even with deterministic ties"
  /// witnesses (SWA/KPB/Sufferage), kRandom for the MET/MCT/Min-Min ones.
  rng::TiePolicy policy = rng::TiePolicy::kDeterministic;
  /// Required increase of the effective makespan over the original.
  double min_increase = 1e-6;
};

struct Witness {
  /// Held behind a shared_ptr so the matrix address stays stable when the
  /// Witness is moved — the schedules inside `result` reference it.
  std::shared_ptr<const etc::EtcMatrix> matrix{};
  IterativeResult result{};
  double original_makespan = 0.0;
  double final_makespan = 0.0;
  std::size_t trials_used = 0;
};

/// Samples up to `max_trials` matrices; returns the first witness found.
std::optional<Witness> find_makespan_increase_witness(
    const heuristics::Heuristic& heuristic, const WitnessSpec& spec,
    rng::Rng& rng, std::size_t max_trials = 100000);

/// Counts, over `trials` sampled matrices, how often the iterative technique
/// increases the heuristic's effective makespan. Returns the fraction.
double makespan_increase_rate(const heuristics::Heuristic& heuristic,
                              const WitnessSpec& spec, rng::Rng& rng,
                              std::size_t trials);

/// Parallel witness search: `max_trials` candidate matrices are split into
/// fixed blocks distributed over `pool`; every block derives its own RNG
/// stream from `seed`, so the returned witness (the hit with the lowest
/// global trial index) is identical for any thread count.
std::optional<Witness> find_makespan_increase_witness_parallel(
    const heuristics::Heuristic& heuristic, const WitnessSpec& spec,
    std::uint64_t seed, sim::ThreadPool& pool,
    std::size_t max_trials = 100000);

/// Samples one matrix according to `spec`.
etc::EtcMatrix sample_matrix(const WitnessSpec& spec, rng::Rng& rng);

/// Runs one trial on an explicit matrix; returns the result when the
/// makespan increased by at least spec.min_increase.
std::optional<IterativeResult> try_matrix(
    const heuristics::Heuristic& heuristic, const etc::EtcMatrix& matrix,
    const WitnessSpec& spec, rng::Rng& rng);

}  // namespace hcsched::core
