// Clang Thread Safety Analysis surface (docs/STATIC_ANALYSIS.md).
//
// Two layers:
//
//   1. HCSCHED_CAPABILITY / HCSCHED_GUARDED_BY / HCSCHED_REQUIRES / ... —
//      thin wrappers over Clang's capability attributes that compile away
//      on every other compiler (and on Clang builds without the analysis,
//      where they are inert but still parsed). The spelling mirrors the
//      LLVM mutex.h reference so the annotations read like the upstream
//      documentation.
//
//   2. core::Mutex / core::MutexLock / core::CondVar — the project's
//      annotated capability types. std::mutex + std::lock_guard are
//      invisible to the analysis (libstdc++ carries no annotations), so
//      every mutex-bearing module holds a core::Mutex and locks it with
//      core::MutexLock; -Wthread-safety then proves the lock discipline on
//      every path at compile time (the `thread-safety` CMake preset turns
//      the analysis into errors).
//
// The wrappers add no state and no indirection over the std primitives;
// CondVar uses std::condition_variable_any so it can wait on the annotated
// Mutex directly (the pool's queue is coarse-grained, so the _any overhead
// is irrelevant — see sim/thread_pool.hpp).
//
// This header is dependency-free by design so any layer may include it.
#pragma once

#include <condition_variable>
#include <mutex>

// Capability attributes are a Clang extension; `__has_attribute` keeps the
// macros inert on GCC/MSVC without a compiler-id cascade.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HCSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HCSCHED_THREAD_ANNOTATION
#define HCSCHED_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define HCSCHED_CAPABILITY(x) HCSCHED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires on construction, releases on destruction.
#define HCSCHED_SCOPED_CAPABILITY HCSCHED_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define HCSCHED_GUARDED_BY(x) HCSCHED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define HCSCHED_PT_GUARDED_BY(x) HCSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called while holding the given capabilities.
#define HCSCHED_REQUIRES(...) \
  HCSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and does not release them.
#define HCSCHED_ACQUIRE(...) \
  HCSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given capabilities.
#define HCSCHED_RELEASE(...) \
  HCSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define HCSCHED_TRY_ACQUIRE(ret, ...) \
  HCSCHED_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the given capabilities
/// (deadlock prevention: public entry points of a self-locking class).
#define HCSCHED_EXCLUDES(...) \
  HCSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define HCSCHED_RETURN_CAPABILITY(x) \
  HCSCHED_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use carries
/// a comment explaining why the analysis cannot see the invariant.
#define HCSCHED_NO_THREAD_SAFETY_ANALYSIS \
  HCSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hcsched::core {

/// std::mutex with the capability attribute: the analysis tracks which
/// paths hold it and rejects unguarded access to HCSCHED_GUARDED_BY fields.
class HCSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HCSCHED_ACQUIRE() { m_.lock(); }
  void unlock() HCSCHED_RELEASE() { m_.unlock(); }
  bool try_lock() HCSCHED_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  // The capability's own storage, not a guarded resource — this is the one
  // mutex in src/ that legitimately has no GUARDED_BY fields.
  std::mutex m_;  // lint:allow(lock-annotation)
};

/// RAII lock over a core::Mutex — the annotated std::lock_guard.
class HCSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HCSCHED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() HCSCHED_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waitable on a core::Mutex. wait() is annotated
/// REQUIRES so a caller polling a guarded predicate in a while-loop around
/// it type-checks; the transient unlock inside std::condition_variable_any
/// is invisible to the analysis (unannotated std code), which matches the
/// caller-visible contract: the mutex is held before and after.
class CondVar {
 public:
  void wait(Mutex& mutex) HCSCHED_REQUIRES(mutex) { cv_.wait(mutex); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hcsched::core
