// Cooperative cancellation for long-running heuristics and studies.
//
// A CancelToken is a shared flag plus an optional steady-clock deadline.
// Producers (a CLI --budget-ms, a test, a supervising service) cancel it;
// consumers poll cancelled() at natural yield points and degrade to the
// best result found so far — never an invalid or partial schedule. The
// anytime heuristics (Genitor, SA, Tabu, A*) and the iterative core honor
// the token within one iteration/step of noticing it.
//
// Tokens reach deep call stacks through a thread-local *current token*
// installed by ScopedCancel; sim::ThreadPool::parallel_for_chunks installs
// the caller's token on every worker for the duration of each chunk, so a
// study-level budget is visible to every heuristic the study runs without
// threading a parameter through each signature. With no token installed
// cancellation_requested() is one thread-local pointer test — the machinery
// costs nothing when unused.
//
// Cancellation is cooperative and sticky: once cancelled() returns true it
// returns true forever (a passed deadline latches into the flag).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace hcsched::core {

class CancelToken {
 public:
  /// A fresh, uncancelled token. Copies share the same state.
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation (idempotent, thread-safe).
  void request_cancel() const noexcept {
    state_->flag.store(true, std::memory_order_relaxed);
  }

  /// Arms a wall-clock budget: the token reports cancelled once `budget`
  /// has elapsed from now.
  void cancel_after(std::chrono::nanoseconds budget) const noexcept {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }

  /// Arms an absolute steady-clock deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline)
      const noexcept {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// True once cancellation was requested or the deadline passed. A passed
  /// deadline latches, so later polls skip the clock read.
  bool cancelled() const noexcept {
    State& s = *state_;
    if (s.flag.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        s.deadline_ns.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now < deadline) return false;
    s.flag.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Whether a deadline is armed (cancelled or not).
  bool has_deadline() const noexcept {
    return state_->deadline_ns.load(std::memory_order_relaxed) !=
           kNoDeadline;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  // Memory-order audit (PR 2/PR 5, verified under the TSan preset): both
  // atomics are sticky single-direction signals polled in a loop — no data
  // is published through them, so relaxed ordering is correct; the latch
  // store in cancelled() is an idempotent cache, racing writers all write
  // `true`.
  struct State {
    std::atomic<bool> flag{false};
    std::atomic<std::int64_t> deadline_ns{kNoDeadline};
  };

  std::shared_ptr<State> state_;
};

/// The token installed on the calling thread (nullptr when none).
const CancelToken* current_cancel_token() noexcept;

/// Polls the thread's current token; false when none is installed. This is
/// the call heuristic authors place in their main loops (see
/// docs/ROBUSTNESS.md for the cancellation contract).
bool cancellation_requested() noexcept;

/// RAII: installs `token` as the calling thread's current token, restoring
/// the previous one on scope exit. The token must outlive the scope. A null
/// token leaves the thread's current token unchanged, so callers holding an
/// optional token need no branch.
class ScopedCancel {
 public:
  explicit ScopedCancel(const CancelToken* token) noexcept;
  explicit ScopedCancel(const CancelToken& token) noexcept
      : ScopedCancel(&token) {}
  ~ScopedCancel();
  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  const CancelToken* previous_;
};

}  // namespace hcsched::core
