// Exact makespan minimization by branch-and-bound — the optimality oracle.
//
// Depth-first search over task -> machine assignments with three classic
// prunings:
//   * bound:     a partial assignment whose current max load already
//                reaches the incumbent is cut;
//   * lower bound: remaining work / |M| plus the best per-task minimum ETC
//                cannot beat the incumbent -> cut;
//   * symmetry:  tasks are branched in descending order of minimum ETC
//                (hardest first), machines in ascending current load;
//   * root bound: an incumbent that reaches the preemptive-relaxation
//                lower bound (core/bound.hpp) ends the search immediately,
//                still proven optimal.
//
// Exponential in general (the problem is NP-hard: R||Cmax); intended for
// the small instances used by tests (optimal-vs-heuristic oracles) and the
// EXT-9 optimality-gap study. `node_limit` bounds the search; when it is
// hit the result is the best incumbent found and `proven_optimal` is false.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"

namespace hcsched::core {

struct OptimalResult {
  sched::Schedule schedule{};   ///< best mapping found
  double makespan = 0.0;
  bool proven_optimal = false;  ///< search completed within the node limit
  std::uint64_t nodes_explored = 0;
  /// Preemptive-relaxation lower bound at the root (core/bound.hpp).
  /// Always admissible: lower_bound <= makespan of any complete schedule.
  /// When an incumbent reaches it the search stops early, proven optimal.
  double lower_bound = 0.0;
};

struct OptimalOptions {
  std::uint64_t node_limit = 50'000'000;
  /// Optional warm start: prune against this makespan from the first node.
  double initial_upper_bound = -1.0;  ///< < 0 means none
};

/// Exact (or node-limited) makespan minimization for `problem`.
OptimalResult solve_optimal(const sched::Problem& problem,
                            OptimalOptions options = {});

}  // namespace hcsched::core
