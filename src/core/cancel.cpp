#include "core/cancel.hpp"

namespace hcsched::core {

namespace {

/// Current token of the calling thread; nullptr outside any ScopedCancel.
thread_local const CancelToken* t_current_token = nullptr;

}  // namespace

const CancelToken* current_cancel_token() noexcept { return t_current_token; }

bool cancellation_requested() noexcept {
  const CancelToken* token = t_current_token;
  return token != nullptr && token->cancelled();
}

ScopedCancel::ScopedCancel(const CancelToken* token) noexcept
    : previous_(t_current_token) {
  if (token != nullptr) t_current_token = token;
}

ScopedCancel::~ScopedCancel() { t_current_token = previous_; }

}  // namespace hcsched::core
