// Reconstructed worked examples from the paper (§3.2-3.7, Tables 1-17,
// Figures 3-19).
//
// The published PDF's tables lost their sub-scripted task/machine labels and
// many entries in transcription; the matrices here were *reconstructed* so
// that every completion-time number, balance-index value and makespan
// transition the prose reports is reproduced exactly (DESIGN.md §4 and
// EXPERIMENTS.md document the correspondence). The Sufferage matrix could
// not be reconstructed value-for-value and is instead a witness of the same
// shape (9 tasks x 3 machines, deterministic ties) found by core/witness
// search, exhibiting the identical phenomenon.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/iterative.hpp"

namespace hcsched::core {

struct PaperExample {
  std::string id;           ///< short key, e.g. "minmin"
  std::string table_refs;   ///< e.g. "Tables 1-3"
  std::string figure_refs;  ///< e.g. "Figures 3-4"
  std::string heuristic;    ///< registry name
  std::shared_ptr<const etc::EtcMatrix> matrix{};
  /// Tie script for the full iterative run (empty = deterministic ties).
  /// Entries are indices into each successive tie's candidate list, in the
  /// order ties are encountered across all iterations.
  std::vector<std::size_t> tie_script{};
  /// Expected machine completion times of the original mapping, by machine
  /// id 0..M-1.
  std::vector<double> expected_original_ct{};
  /// Expected final finishing times after the full iterative technique, by
  /// machine id (equal to the paper's first-iterative-mapping values in all
  /// examples).
  std::vector<double> expected_final_ct{};
  double expected_original_makespan = 0.0;
  double expected_final_makespan = 0.0;
  std::string notes{};
};

PaperExample minmin_example();     ///< Tables 1-3, Figures 3-4 (random ties)
PaperExample mct_example();        ///< Tables 4-6, Figures 6-7 (random ties)
PaperExample met_example();        ///< Tables 4, 7-8, Figures 9-10
PaperExample swa_example();        ///< Tables 9-11, Figures 11-12 (determ.)
PaperExample kpb_example();        ///< Tables 12-14, Figures 15-16 (determ.)
PaperExample sufferage_example();  ///< Tables 15-17, Figures 18-19 (determ.)

std::vector<PaperExample> all_paper_examples();

/// Runs the full iterative technique on the example with its tie script
/// (use_seeding off, matching the paper's protocol for greedy heuristics).
IterativeResult run_paper_example(const PaperExample& example);

/// True when the measured original/final completion times match the
/// example's expectations within epsilon.
bool example_matches(const PaperExample& example,
                     const IterativeResult& result, double epsilon = 1e-9);

}  // namespace hcsched::core
