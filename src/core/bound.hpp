// Admissible lower bounds on the optimal makespan — the other half of the
// optimality-gap story (core/optimal.* supplies exact optima when the
// instance is small enough; this module supplies a bound that is valid at
// every size).
//
// `preemptive_bound` is the classic preemptive relaxation for R||Cmax with
// machine ready times: the optimum can never beat
//   * LB1: any single task run on its best machine
//          max_t min_m (ready_m + etc(t, m)),
//   * LB2: the latest machine release time  max_m ready_m,
//   * LB3: perfectly balanced work  (sum_m ready_m + sum_t min_m etc) / |M|.
// The maximum of the three is still admissible, so for every complete
// schedule S of the instance:  preemptive_bound(p) <= makespan(S).
//
// `gap_reference` packages "the best reference value we can defend": the
// exact optimum (BnB, proven within a node budget) on small instances,
// falling back to the preemptive bound when the instance is too large or
// the search is cut. `gap_pct` then turns a heuristic makespan into the
// fractional optimality gap reported by study rows and the gap bench.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sched/problem.hpp"

namespace hcsched::core {

/// Admissible lower bound on the makespan of any complete schedule of
/// `problem` (preemptive relaxation; see file comment). Throws
/// std::invalid_argument when the problem has no machines.
double preemptive_bound(const sched::Problem& problem);

/// A defensible reference value for optimality-gap reporting.
struct GapReference {
  double value = 0.0;   ///< exact optimum, or the preemptive bound
  bool exact = false;   ///< true when BnB proved `value` optimal
  std::uint64_t nodes_explored = 0;  ///< BnB effort (0 when skipped)
};

struct GapOptions {
  /// BnB is attempted only at or below these sizes; larger instances fall
  /// back to the preemptive bound (exact == false).
  std::size_t exact_max_tasks = 12;
  std::size_t exact_max_machines = 6;
  /// Node budget handed to solve_optimal; an unproven search falls back to
  /// the preemptive bound rather than reporting an incumbent upper bound.
  std::uint64_t node_limit = 2'000'000;
};

/// Best defensible reference for `problem` under `options`.
GapReference gap_reference(const sched::Problem& problem,
                           const GapOptions& options = {});

/// Fractional optimality gap (makespan - reference) / reference.
/// Degenerate zero-reference instances (no tasks, zero ready times) report
/// a gap of 0. Exact references make this the true (makespan - opt)/opt.
double gap_pct(double makespan, const GapReference& reference);

}  // namespace hcsched::core
