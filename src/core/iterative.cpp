#include "core/iterative.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hcsched::core {

double IterativeResult::final_finish_of(MachineId machine) const {
  for (const auto& [m, t] : final_finishing_times) {
    if (m == machine) return t;
  }
  throw std::invalid_argument("IterativeResult: machine " +
                              std::to_string(machine) + " unknown");
}

std::vector<double> IterativeResult::original_finishing_times() const {
  std::vector<double> out;
  out.reserve(final_finishing_times.size());
  for (const auto& [machine, unused] : final_finishing_times) {
    (void)unused;
    out.push_back(original().schedule.completion_time(machine));
  }
  return out;
}

double IterativeResult::final_makespan() const {
  double best = 0.0;
  for (const auto& [machine, finish] : final_finishing_times) {
    (void)machine;
    best = std::max(best, finish);
  }
  return best;
}

bool IterativeResult::makespan_increased(double epsilon) const {
  return final_makespan() > original().makespan + epsilon;
}

IterativeResult IterativeMinimizer::run(const Heuristic& heuristic,
                                        const Problem& problem,
                                        TieBreaker& ties) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("IterativeMinimizer: no machines");
  }
  IterativeResult result;
  // Final finishing times keyed in initial machine order; filled in as
  // machines are removed.
  for (MachineId m : problem.machines()) {
    result.final_finishing_times.emplace_back(m, 0.0);
  }
  auto record_finish = [&result](MachineId machine, double finish) {
    for (auto& [m, t] : result.final_finishing_times) {
      if (m == machine) {
        t = finish;
        return;
      }
    }
  };

  Problem current = problem;
  Schedule seed_storage;
  const Schedule* seed = nullptr;
  std::size_t index = 0;
  for (;;) {
    IterationRecord record;
    record.index = index;
    record.schedule = options_.use_seeding
                          ? heuristic.map_seeded(current, ties, seed)
                          : heuristic.map(current, ties);
    record.makespan = record.schedule.makespan();
    record.makespan_machine =
        record.schedule.makespan_machine(options_.epsilon);
    result.iterations.push_back(std::move(record));
    const IterationRecord& done = result.iterations.back();

    if (done.problem().num_machines() == 1 ||
        done.problem().num_tasks() == 0) {
      // Terminal iteration: every surviving machine keeps this mapping's
      // completion time.
      for (MachineId m : done.problem().machines()) {
        record_finish(m, done.schedule.completion_time(m));
      }
      break;
    }
    // Freeze the makespan machine's finishing time and shrink the problem.
    record_finish(done.makespan_machine, done.makespan);
    const std::vector<TaskId> removed_tasks =
        done.schedule.tasks_on(done.makespan_machine);
    current = done.problem().without_machine(done.makespan_machine,
                                             removed_tasks);
    ++index;

    // Seed for the next iteration: the just-produced mapping restricted to
    // the surviving machines. Valid because removing the makespan machine
    // removes exactly its tasks.
    seed = nullptr;
    if (options_.use_seeding) {
      seed_storage = restrict_schedule(done.schedule, current);
      seed = &seed_storage;
    }
  }
  return result;
}

Schedule restrict_schedule(const Schedule& previous, const Problem& problem) {
  Schedule out(problem);
  for (TaskId t : problem.tasks()) {
    const auto machine = previous.machine_of(t);
    if (!machine.has_value()) {
      throw std::invalid_argument(
          "restrict_schedule: task not mapped by previous schedule");
    }
    out.assign(t, *machine);
  }
  return out;
}

}  // namespace hcsched::core
