#include "core/iterative.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/cancel.hpp"
#include "core/check.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/fastpath/reuse.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sched/metrics.hpp"

namespace hcsched::core {

namespace {

#if HCSCHED_TRACE
/// One "iterative.iteration" event: the paper's per-iteration trajectory
/// (completion-time vector, balance index, makespan transition) plus which
/// machine gets frozen. `removed` is false for the terminal iteration.
void trace_iteration(const Heuristic& heuristic, const IterationRecord& record,
                     bool removed) {
  if (!obs::Tracer::active()) return;
  obs::JsonValue::Object completion_times;
  completion_times.reserve(record.problem().num_machines());
  for (MachineId m : record.problem().machines()) {
    std::string label(1, 'm');
    label += std::to_string(m);
    completion_times.emplace_back(
        std::move(label), obs::JsonValue(record.schedule.completion_time(m)));
  }
  obs::JsonValue::Object fields;
  fields.emplace_back("heuristic", obs::JsonValue(heuristic.name()));
  fields.emplace_back("iteration", obs::JsonValue(record.index));
  fields.emplace_back("tasks",
                      obs::JsonValue(record.problem().num_tasks()));
  fields.emplace_back("machines",
                      obs::JsonValue(record.problem().num_machines()));
  fields.emplace_back("makespan", obs::JsonValue(record.makespan));
  fields.emplace_back(
      "balance_index",
      obs::JsonValue(sched::load_balance_index(record.schedule)));
  fields.emplace_back("completion_times",
                      obs::JsonValue(std::move(completion_times)));
  if (removed) {
    std::string label(1, 'm');
    label += std::to_string(record.makespan_machine);
    fields.emplace_back("removed_machine", obs::JsonValue(std::move(label)));
    fields.emplace_back("frozen_completion_time",
                        obs::JsonValue(record.makespan));
  }
  obs::Tracer::emit("iterative.iteration", std::move(fields));
}
#endif

}  // namespace

double IterativeResult::final_finish_of(MachineId machine) const {
  for (const auto& [m, t] : final_finishing_times) {
    if (m == machine) return t;
  }
  throw std::invalid_argument("IterativeResult: machine " +
                              std::to_string(machine) + " unknown");
}

std::vector<double> IterativeResult::original_finishing_times() const {
  std::vector<double> out;
  out.reserve(final_finishing_times.size());
  for (const auto& [machine, unused] : final_finishing_times) {
    (void)unused;
    out.push_back(original().schedule.completion_time(machine));
  }
  return out;
}

double IterativeResult::final_makespan() const {
  double best = 0.0;
  for (const auto& [machine, finish] : final_finishing_times) {
    (void)machine;
    best = std::max(best, finish);
  }
  return best;
}

bool IterativeResult::makespan_increased(double epsilon) const {
  return final_makespan() > original().makespan + epsilon;
}

IterativeResult IterativeMinimizer::run(const Heuristic& heuristic,
                                        const Problem& problem,
                                        TieBreaker& ties) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("IterativeMinimizer: no machines");
  }
  HCSCHED_COUNT(obs::Counter::kIterativeRuns);
  // Wall time of the whole minimization (all rounds of one heuristic) shows
  // up in `study --profile` keyed by heuristic name.
  HCSCHED_SPAN(run_span, "iterative:" + std::string(heuristic.name()));
  HCSCHED_SPAN_ATTR(run_span, "heuristic", obs::JsonValue(heuristic.name()));
  HCSCHED_SPAN_ATTR(run_span, "tasks", obs::JsonValue(problem.num_tasks()));
  HCSCHED_SPAN_ATTR(run_span, "machines",
                    obs::JsonValue(problem.num_machines()));
  IterativeResult result;
  // Final finishing times keyed in initial machine order; filled in as
  // machines are removed.
  for (MachineId m : problem.machines()) {
    result.final_finishing_times.emplace_back(m, 0.0);
  }
  auto record_finish = [&result](MachineId machine, double finish) {
    for (auto& [m, t] : result.final_finishing_times) {
      if (m == machine) {
        t = finish;
        return;
      }
    }
    // Every frozen machine comes from a Problem derived from the original,
    // so it must appear in the table seeded above.
    HCSCHED_UNREACHABLE("machine ", machine,
                        " frozen but absent from the original problem");
  };

  Problem current = problem;
  // Incremental machine-removal state for the fastpath kernels: the view of
  // the current problem's ETC cells is compacted in place each round
  // instead of re-gathered. The heuristic is still invoked through its
  // normal NVI entry (instrumentation and fault-injection sites stay), and
  // kernels that don't recognize the problem simply ignore the context —
  // equivalence never depends on it (reuse.hpp).
  std::optional<heuristics::fastpath::IterativeReuse> reuse;
  std::optional<heuristics::fastpath::ScopedReuse> reuse_scope;
  if (heuristics::fastpath::enabled()) {
    reuse.emplace(current);
    reuse_scope.emplace(*reuse);
  }
  Schedule seed_storage;
  const Schedule* seed = nullptr;
  std::size_t index = 0;
  for (;;) {
    IterationRecord record;
    record.index = index;
    {
      HCSCHED_SPAN(iteration_span, "iteration");
      record.schedule = options_.use_seeding
                            ? heuristic.map_seeded(current, ties, seed)
                            : heuristic.map(current, ties);
      record.makespan = record.schedule.makespan();
      record.makespan_machine =
          record.schedule.makespan_machine(options_.epsilon);
      HCSCHED_SPAN_ATTR(iteration_span, "index", obs::JsonValue(index));
      HCSCHED_SPAN_ATTR(iteration_span, "makespan",
                        obs::JsonValue(record.makespan));
      HCSCHED_SPAN_ATTR(
          iteration_span, "makespan_machine",
          obs::JsonValue("m" + std::to_string(record.makespan_machine)));
    }
    // Heuristics must return complete mappings: every task of the (current,
    // possibly shrunk) problem assigned exactly once.
    HCSCHED_INVARIANT(record.schedule.complete(), "iteration ", index,
                      " mapped ", record.schedule.num_assigned(), " of ",
                      current.num_tasks(), " tasks");
    result.iterations.push_back(std::move(record));
    const IterationRecord& done = result.iterations.back();
    HCSCHED_COUNT(obs::Counter::kIterativeIterations);
    HCSCHED_METRIC_COUNT("hcsched_iterative_iterations_total",
                         "Iterative-minimization rounds executed", 1);

    // Cancellation degrades gracefully: the just-produced mapping (itself a
    // best-so-far result from any cancelled anytime heuristic) becomes the
    // terminal iteration, freezing every surviving machine at its current
    // completion time — the result stays structurally valid, just with
    // fewer minimization rounds applied.
    if (done.problem().num_machines() == 1 ||
        done.problem().num_tasks() == 0 || cancellation_requested()) {
      // Terminal iteration: every surviving machine keeps this mapping's
      // completion time.
#if HCSCHED_TRACE
      trace_iteration(heuristic, done, /*removed=*/false);
#endif
      for (MachineId m : done.problem().machines()) {
        record_finish(m, done.schedule.completion_time(m));
      }
      break;
    }
#if HCSCHED_TRACE
    trace_iteration(heuristic, done, /*removed=*/true);
#endif
    // Freeze the makespan machine's finishing time and shrink the problem.
    record_finish(done.makespan_machine, done.makespan);
    const std::vector<TaskId> removed_tasks =
        done.schedule.tasks_on(done.makespan_machine);
    current = done.problem().without_machine(done.makespan_machine,
                                             removed_tasks);
    // Each round removes exactly the makespan machine and exactly its tasks.
    HCSCHED_INVARIANT(
        current.num_machines() == done.problem().num_machines() - 1,
        "iteration ", index, " removed ",
        done.problem().num_machines() - current.num_machines(), " machines");
    HCSCHED_INVARIANT(
        current.num_tasks() == done.problem().num_tasks() -
                                   removed_tasks.size(),
        "iteration ", index, " dropped tasks not on the frozen machine");
    if (reuse.has_value()) reuse->apply_removal(current);
    ++index;

    // Seed for the next iteration: the just-produced mapping restricted to
    // the surviving machines. Valid because removing the makespan machine
    // removes exactly its tasks.
    seed = nullptr;
    if (options_.use_seeding) {
      seed_storage = restrict_schedule(done.schedule, current);
      seed = &seed_storage;
    }
  }
#if HCSCHED_TRACE
  if (obs::Tracer::active()) {
    obs::JsonValue::Object final_times;
    final_times.reserve(result.final_finishing_times.size());
    for (const auto& [m, t] : result.final_finishing_times) {
      std::string label(1, 'm');
      label += std::to_string(m);
      final_times.emplace_back(std::move(label), obs::JsonValue(t));
    }
    obs::JsonValue::Object fields;
    fields.emplace_back("heuristic", obs::JsonValue(heuristic.name()));
    fields.emplace_back("fastpath",
                        obs::JsonValue(heuristics::fastpath::enabled()));
    fields.emplace_back("iterations",
                        obs::JsonValue(result.iterations.size()));
    fields.emplace_back("original_makespan",
                        obs::JsonValue(result.original().makespan));
    fields.emplace_back("final_makespan",
                        obs::JsonValue(result.final_makespan()));
    fields.emplace_back("makespan_increased",
                        obs::JsonValue(result.makespan_increased()));
    fields.emplace_back("final_finishing_times",
                        obs::JsonValue(std::move(final_times)));
    obs::Tracer::emit("iterative.done", std::move(fields));
  }
#endif
  HCSCHED_SPAN_ATTR(run_span, "iterations",
                    obs::JsonValue(result.iterations.size()));
  return result;
}

Schedule restrict_schedule(const Schedule& previous, const Problem& problem) {
  Schedule out(problem);
  for (TaskId t : problem.tasks()) {
    const auto machine = previous.machine_of(t);
    if (!machine.has_value()) {
      throw std::invalid_argument(
          "restrict_schedule: task not mapped by previous schedule");
    }
    out.assign(t, *machine);
  }
  HCSCHED_INVARIANT(out.complete(), "restriction mapped ", out.num_assigned(),
                    " of ", problem.num_tasks(), " surviving tasks");
  return out;
}

}  // namespace hcsched::core
