#include "core/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hcsched::check {

namespace {

void default_handler(const Violation& v) {
  const std::string text = format_violation(v);
  std::fputs(text.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

std::atomic<Handler> g_handler{nullptr};  // nullptr = default_handler

const char* kind_upper(const char* kind) {
  // The catalog is closed; map to the uppercase spelling used in diagnostics.
  const std::string_view k(kind);
  if (k == "precondition") return "PRECONDITION";
  if (k == "invariant") return "INVARIANT";
  if (k == "unreachable") return "UNREACHABLE";
  return kind;
}

}  // namespace

std::string format_violation(const Violation& v) {
  std::string out = "hcsched: ";
  out += kind_upper(v.kind);
  if (v.expression != nullptr && v.expression[0] != '\0') {
    out += " violated: ";
    out += v.expression;
  } else {
    out += " reached";
  }
  out += "\n  at ";
  out += v.file;
  out += ':';
  out += std::to_string(v.line);
  out += " in ";
  out += v.function;
  if (!v.message.empty()) {
    out += "\n  ";
    out += v.message;
  }
  return out;
}

Handler set_failure_handler(Handler handler) noexcept {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void fail(const Violation& v) {
  Handler handler = g_handler.load(std::memory_order_acquire);
  if (handler == nullptr) handler = default_handler;
  handler(v);  // may throw (test handlers) ...
  std::abort();  // ... but must not return.
}

}  // namespace hcsched::check
