#include "core/bound.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/optimal.hpp"

namespace hcsched::core {

double preemptive_bound(const sched::Problem& problem) {
  const std::size_t m = problem.num_machines();
  if (m == 0) {
    throw std::invalid_argument("preemptive_bound: no machines");
  }
  // LB2: the latest release time bounds every completion.
  double latest_ready = 0.0;
  double ready_sum = 0.0;
  for (std::size_t slot = 0; slot < m; ++slot) {
    const double r = problem.initial_ready(slot);
    latest_ready = std::max(latest_ready, r);
    ready_sum += r;
  }
  double bound = latest_ready;
  // LB1 per task, and the summed min-ETC work for LB3.
  double min_etc_sum = 0.0;
  for (const auto task : problem.tasks()) {
    double best_completion = problem.initial_ready(0) + problem.etc_at(task, 0);
    double min_etc = problem.etc_at(task, 0);
    for (std::size_t slot = 1; slot < m; ++slot) {
      const double etc = problem.etc_at(task, slot);
      best_completion =
          std::min(best_completion, problem.initial_ready(slot) + etc);
      min_etc = std::min(min_etc, etc);
    }
    bound = std::max(bound, best_completion);
    min_etc_sum += min_etc;
  }
  // LB3: even preemptive, perfectly balanced work cannot finish earlier.
  const double balanced = (ready_sum + min_etc_sum) / static_cast<double>(m);
  return std::max(bound, balanced);
}

GapReference gap_reference(const sched::Problem& problem,
                           const GapOptions& options) {
  GapReference reference;
  reference.value = preemptive_bound(problem);
  if (problem.num_tasks() <= options.exact_max_tasks &&
      problem.num_machines() <= options.exact_max_machines) {
    OptimalOptions opt;
    opt.node_limit = options.node_limit;
    const OptimalResult result = solve_optimal(problem, opt);
    reference.nodes_explored = result.nodes_explored;
    if (result.proven_optimal) {
      reference.value = result.makespan;
      reference.exact = true;
    }
  }
  return reference;
}

double gap_pct(double makespan, const GapReference& reference) {
  if (reference.value <= 0.0) return 0.0;
  return (makespan - reference.value) / reference.value;
}

}  // namespace hcsched::core
