// Executable forms of the paper's theorems (§3.2-3.4) and the Genitor
// monotonicity claim (§3.1).
//
// The theorems state: with deterministic tie-breaking, the mapping produced
// by Min-Min / MCT / MET at iteration i+1 is identical to iteration i's
// mapping restricted to the surviving machines — equivalently, a machine's
// finishing time never changes between the original mapping and the
// iteration at which it is removed. These checkers evaluate that property on
// concrete instances; the property-based tests sweep them over thousands of
// random ETC matrices.
#pragma once

#include <string>
#include <vector>

#include "core/iterative.hpp"

namespace hcsched::core {

struct InvarianceReport {
  bool holds = true;
  /// Human-readable description of the first violation found (empty when
  /// `holds`).
  std::string violation{};
};

/// Checks the mapping-invariance property on an already-computed run: for
/// every consecutive pair of iterations, each surviving task keeps its
/// machine and each surviving machine keeps its completion time.
InvarianceReport check_mapping_invariance(const IterativeResult& result,
                                          double epsilon = 1e-9);

/// Convenience: runs `heuristic` iteratively with deterministic ties on
/// `problem` and checks invariance.
InvarianceReport verify_theorem(const Heuristic& heuristic,
                                const Problem& problem,
                                double epsilon = 1e-9);

/// Checks the Genitor-style monotonicity property: per-iteration makespans
/// never increase the *effective* makespan, i.e. every iteration's makespan
/// is at most the completion time the removed machines froze before it —
/// equivalently final_makespan() == original makespan or better on every
/// machine. Returns the first violation.
InvarianceReport check_monotone_makespan(const IterativeResult& result,
                                         double epsilon = 1e-9);

/// Per-machine comparison: final finishing time vs original finishing time;
/// `true` when no machine finished later than in the original mapping.
bool no_machine_worsened(const IterativeResult& result,
                         double epsilon = 1e-9);

}  // namespace hcsched::core
