// IterativeMinimizer — the paper's primary contribution (§1-2).
//
// Given a heuristic H and a problem, iteration 0 produces the *original
// mapping*. Each subsequent iteration removes the previous iteration's
// makespan machine together with the tasks assigned to it, resets every
// surviving machine to its initial ready time, and re-runs H on the
// remaining tasks and machines. The process stops when one machine remains
// (or the task set empties). A machine's *final finishing time* is its
// completion time in the iteration at which it was removed; machines
// surviving to the last iteration take their completion times from it.
//
// With `use_seeding` enabled the previous iteration's mapping (already
// restricted to the surviving machines) is passed to Heuristic::map_seeded —
// only Genitor consumes it; for the greedy heuristics this reproduces the
// paper's protocol exactly.
#pragma once

#include <vector>

#include "heuristics/heuristic.hpp"

namespace hcsched::core {

using heuristics::Heuristic;
using rng::TieBreaker;
using sched::MachineId;
using sched::Problem;
using sched::Schedule;
using sched::TaskId;

struct IterationRecord {
  std::size_t index = 0;  ///< 0 = original mapping
  Schedule schedule{};    ///< mapping produced by the heuristic
  MachineId makespan_machine = -1;
  double makespan = 0.0;

  /// Tasks/machines considered this iteration (owned by the schedule).
  const Problem& problem() const noexcept { return schedule.problem(); }
};

struct IterativeResult {
  std::vector<IterationRecord> iterations{};
  /// (machine, final finishing time) for every machine of the initial
  /// problem, in initial machine order.
  std::vector<std::pair<MachineId, double>> final_finishing_times{};

  const IterationRecord& original() const { return iterations.front(); }

  double final_finish_of(MachineId machine) const;

  /// Finishing times of the original mapping, machine order matching
  /// final_finishing_times.
  std::vector<double> original_finishing_times() const;

  /// Largest final finishing time over all machines — the *effective*
  /// makespan after the iterative technique. The paper's examples show this
  /// can exceed the original makespan.
  double final_makespan() const;

  /// True when some iteration's effective makespan exceeds the original
  /// mapping's makespan by more than `epsilon`.
  bool makespan_increased(double epsilon = 1e-9) const;
};

struct IterativeOptions {
  /// Pass the previous iteration's mapping to Heuristic::map_seeded
  /// (Genitor's protocol in the paper). Greedy heuristics ignore the seed.
  bool use_seeding = true;
  /// Epsilon used when identifying the makespan machine.
  double epsilon = 1e-9;
};

class IterativeMinimizer {
 public:
  explicit IterativeMinimizer(IterativeOptions options = {})
      : options_(options) {}

  /// Runs the full iterative technique. The TieBreaker is shared across
  /// iterations (a Scripted breaker therefore scripts the whole run).
  IterativeResult run(const Heuristic& heuristic, const Problem& problem,
                      TieBreaker& ties) const;

  const IterativeOptions& options() const noexcept { return options_; }

 private:
  IterativeOptions options_;
};

/// Restriction of `previous` to the tasks/machines of `problem`: a schedule
/// over `problem` assigning each task to the machine `previous` chose.
/// Usable as a Genitor seed. Preconditions: every task of `problem` is
/// mapped by `previous` to a machine of `problem`.
Schedule restrict_schedule(const Schedule& previous, const Problem& problem);

}  // namespace hcsched::core
