#include "core/optimal.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/bound.hpp"
#include "obs/counters.hpp"

namespace hcsched::core {

namespace {

struct Searcher {
  const sched::Problem& problem;
  const OptimalOptions& options;
  std::vector<std::size_t> task_order;   // branching order (indices into tasks)
  std::vector<double> min_etc_suffix;    // LB: sum of per-task min ETC after depth d
  std::vector<double> load;              // current load per machine slot
  std::vector<std::uint32_t> assignment; // by task_order position
  std::vector<std::uint32_t> best_assignment;
  double best = std::numeric_limits<double>::infinity();
  double root_lower_bound = 0.0;  // admissible; incumbent == bound -> done
  bool found_leaf = false;
  bool bound_hit = false;
  bool complete = true;
  std::uint64_t nodes = 0;

  double min_etc(std::size_t task_pos) const {
    const auto task = problem.tasks()[task_pos];
    double lo = problem.etc_at(task, 0);
    for (std::size_t m = 1; m < problem.num_machines(); ++m) {
      lo = std::min(lo, problem.etc_at(task, m));
    }
    return lo;
  }

  void dfs(std::size_t depth, double current_max) {
    if (bound_hit) return;  // incumbent already matches the lower bound
    HCSCHED_COUNT(obs::Counter::kSearchNodesExpanded);
    if (++nodes > options.node_limit) {
      complete = false;
      return;
    }
    if (current_max >= best) return;  // bound
    if (depth == task_order.size()) {
      best = current_max;
      best_assignment = assignment;
      found_leaf = true;
      // No schedule can beat the preemptive relaxation, so an incumbent on
      // the bound is optimal and the remaining tree cannot improve on it.
      if (best <= root_lower_bound + 1e-12) bound_hit = true;
      return;
    }
    // Lower bound: even perfectly balanced remaining work cannot win.
    // total load so far + remaining min-ETC work spread over all machines.
    double total_load = 0.0;
    for (double l : load) total_load += l;
    const double balanced =
        (total_load + min_etc_suffix[depth]) /
        static_cast<double>(problem.num_machines());
    if (std::max(current_max, balanced) >= best) return;

    const std::size_t task_pos = task_order[depth];
    const auto task = problem.tasks()[task_pos];

    // Branch machines in ascending load (find good incumbents early).
    std::vector<std::size_t> machine_order(problem.num_machines());
    std::iota(machine_order.begin(), machine_order.end(), std::size_t{0});
    std::sort(machine_order.begin(), machine_order.end(),
              [&](std::size_t a, std::size_t b) { return load[a] < load[b]; });

    for (std::size_t slot : machine_order) {
      const double etc_value = problem.etc_at(task, slot);
      const double new_load = load[slot] + etc_value;
      if (new_load >= best) continue;
      load[slot] = new_load;
      assignment[depth] = static_cast<std::uint32_t>(slot);
      dfs(depth + 1, std::max(current_max, new_load));
      load[slot] = new_load - etc_value;
      if (!complete || bound_hit) return;
    }
  }
};

}  // namespace

OptimalResult solve_optimal(const sched::Problem& problem,
                            OptimalOptions options) {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("solve_optimal: no machines");
  }
  Searcher search{problem, options, {}, {}, {}, {}, {}};
  const std::size_t n = problem.num_tasks();

  // Branch hardest (largest minimum ETC) tasks first.
  search.task_order.resize(n);
  std::iota(search.task_order.begin(), search.task_order.end(),
            std::size_t{0});
  std::vector<double> min_etcs(n);
  for (std::size_t i = 0; i < n; ++i) min_etcs[i] = search.min_etc(i);
  std::sort(search.task_order.begin(), search.task_order.end(),
            [&](std::size_t a, std::size_t b) {
              return min_etcs[a] > min_etcs[b];
            });

  search.min_etc_suffix.assign(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    search.min_etc_suffix[i] =
        search.min_etc_suffix[i + 1] + min_etcs[search.task_order[i]];
  }

  search.load = problem.initial_ready_times();
  search.assignment.assign(n, 0);
  search.best_assignment.assign(n, 0);
  search.root_lower_bound = preemptive_bound(problem);
  if (options.initial_upper_bound >= 0.0) {
    // Prune against the warm start; +epsilon so an equal solution is still
    // reconstructed by the search itself.
    search.best = options.initial_upper_bound + 1e-12;
  }
  double initial_max = 0.0;
  for (double r : search.load) initial_max = std::max(initial_max, r);
  search.dfs(0, initial_max);

  OptimalResult result;
  result.nodes_explored = search.nodes;
  result.proven_optimal = search.complete;
  result.lower_bound = search.root_lower_bound;
  if (!search.found_leaf) {
    // Either the node limit was hit before any leaf, or a warm start was
    // supplied and nothing strictly better exists. Return a valid fallback
    // schedule; proven_optimal then means "the warm start is unbeaten".
    sched::Schedule fallback(problem);
    for (auto task : problem.tasks()) {
      fallback.assign(task, problem.machines()[0]);
    }
    result.schedule = std::move(fallback);
    result.makespan = result.schedule.makespan();
    result.proven_optimal =
        search.complete && options.initial_upper_bound >= 0.0;
    return result;
  }
  sched::Schedule schedule(problem);
  for (std::size_t depth = 0; depth < n; ++depth) {
    const std::size_t task_pos = search.task_order[depth];
    schedule.assign(problem.tasks()[task_pos],
                    problem.machines()[search.best_assignment[depth]]);
  }
  result.schedule = std::move(schedule);
  result.makespan = result.schedule.makespan();
  return result;
}

}  // namespace hcsched::core
