// Contract checks: machine-checked preconditions and invariants.
//
// The scheduler's core invariants (every task assigned exactly once, frozen
// completion times never move, no out-of-range ids) were previously comment
// assertions; this header turns them into executable checks:
//
//   HCSCHED_PRECONDITION(cond, msg...)  — caller-supplied inputs
//   HCSCHED_INVARIANT(cond, msg...)     — internal consistency
//   HCSCHED_UNREACHABLE(msg...)         — control flow that must not happen
//
// The trailing message arguments are optional and are streamed together
// (ostream <<) only on the failure path, so a check site costs one compare
// and a cold branch. Checks are compiled in when HCSCHED_CHECK_ENABLED is 1
// (CMake: -DHCSCHED_CHECKS=ON, AUTO follows Debug); in Release they compile
// to nothing — the condition is NOT evaluated, and HCSCHED_UNREACHABLE
// lowers to __builtin_unreachable() so the optimizer can exploit it.
//
// Contract checks are for bugs *inside* this library. API misuse that
// callers are documented to be able to trigger (Schedule::assign on a
// foreign task, EtcMatrix::at out of range, ...) keeps throwing exceptions
// in every build type; those paths are part of the public contract and are
// covered by tests.
//
// On violation the installed failure handler receives a Violation record;
// the default handler prints the formatted diagnostic to stderr and aborts.
// Tests install a throwing handler (see tests/test_check.cpp) to assert on
// the diagnostic without forking a death test.
#pragma once

#include <sstream>
#include <string>

#ifndef HCSCHED_CHECK_ENABLED
#ifdef NDEBUG
#define HCSCHED_CHECK_ENABLED 0
#else
#define HCSCHED_CHECK_ENABLED 1
#endif
#endif

namespace hcsched::check {

/// Whether contract-check sites were compiled in.
inline constexpr bool kChecksCompiledIn = HCSCHED_CHECK_ENABLED != 0;

/// One contract violation, as handed to the failure handler.
struct Violation {
  const char* kind = "";        ///< "precondition" | "invariant" | "unreachable"
  const char* expression = "";  ///< stringized condition ("" for unreachable)
  const char* file = "";
  long line = 0;
  const char* function = "";
  std::string message{};  ///< streamed user detail, possibly empty
};

/// The canonical multi-line diagnostic:
///
///   hcsched: PRECONDITION violated: task >= 0
///     at src/sched/schedule.cpp:42 in assign
///     task id -3 out of range
///
/// (third line only when a message was supplied).
std::string format_violation(const Violation& v);

using Handler = void (*)(const Violation&);

/// Installs a failure handler, returning the previous one. nullptr restores
/// the default print-to-stderr-and-abort handler. Thread-safe.
Handler set_failure_handler(Handler handler) noexcept;

/// Routes `v` to the installed handler; aborts if the handler returns
/// (a handler may instead throw, which is how tests observe violations).
[[noreturn]] void fail(const Violation& v);

namespace detail {

inline std::string format_message() { return {}; }

template <typename... Args>
std::string format_message(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

[[noreturn]] inline void unreachable_hint() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_unreachable();
#else
  for (;;) {
  }
#endif
}

}  // namespace detail

}  // namespace hcsched::check

#if HCSCHED_CHECK_ENABLED

#define HCSCHED_CHECK_IMPL_(kind_, cond_, ...)                         \
  do {                                                                 \
    if (!(cond_)) [[unlikely]] {                                       \
      ::hcsched::check::fail(::hcsched::check::Violation{              \
          kind_, #cond_, __FILE__, __LINE__, __func__,                 \
          ::hcsched::check::detail::format_message(__VA_ARGS__)});     \
    }                                                                  \
  } while (0)

#define HCSCHED_PRECONDITION(cond, ...) \
  HCSCHED_CHECK_IMPL_("precondition", cond __VA_OPT__(, ) __VA_ARGS__)

#define HCSCHED_INVARIANT(cond, ...) \
  HCSCHED_CHECK_IMPL_("invariant", cond __VA_OPT__(, ) __VA_ARGS__)

#define HCSCHED_UNREACHABLE(...)                                   \
  ::hcsched::check::fail(::hcsched::check::Violation{              \
      "unreachable", "", __FILE__, __LINE__, __func__,             \
      ::hcsched::check::detail::format_message(__VA_ARGS__)})

#else  // HCSCHED_CHECK_ENABLED

// Compiled out: the condition is parsed (sizeof keeps names odr-unused and
// silences unused-variable warnings) but never evaluated.
#define HCSCHED_PRECONDITION(cond, ...) \
  do {                                  \
    (void)sizeof(!(cond));              \
  } while (0)

#define HCSCHED_INVARIANT(cond, ...) \
  do {                               \
    (void)sizeof(!(cond));           \
  } while (0)

#define HCSCHED_UNREACHABLE(...) ::hcsched::check::detail::unreachable_hint()

#endif  // HCSCHED_CHECK_ENABLED
