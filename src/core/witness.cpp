#include "core/witness.hpp"

#include <algorithm>

#include "core/thread_annotations.hpp"

namespace hcsched::core {

etc::EtcMatrix sample_matrix(const WitnessSpec& spec, rng::Rng& rng) {
  etc::EtcMatrix m(spec.num_tasks, spec.num_machines);
  const int steps = spec.max_etc - spec.min_etc;
  for (std::size_t t = 0; t < spec.num_tasks; ++t) {
    for (std::size_t j = 0; j < spec.num_machines; ++j) {
      double v = static_cast<double>(
          rng.between(0, static_cast<std::int64_t>(steps)) + spec.min_etc);
      if (spec.half_integers && rng.chance(0.25)) v += 0.5;
      m.at(static_cast<etc::TaskId>(t), static_cast<etc::MachineId>(j)) = v;
    }
  }
  return m;
}

std::optional<IterativeResult> try_matrix(
    const heuristics::Heuristic& heuristic, const etc::EtcMatrix& matrix,
    const WitnessSpec& spec, rng::Rng& rng) {
  const Problem problem = Problem::full(matrix);
  IterativeMinimizer minimizer{IterativeOptions{.use_seeding = false}};
  IterativeResult result = [&] {
    if (spec.policy == rng::TiePolicy::kRandom) {
      TieBreaker ties(rng);
      return minimizer.run(heuristic, problem, ties);
    }
    TieBreaker ties;
    return minimizer.run(heuristic, problem, ties);
  }();
  if (result.final_makespan() >
      result.original().makespan + spec.min_increase) {
    return result;
  }
  return std::nullopt;
}

std::optional<Witness> find_makespan_increase_witness(
    const heuristics::Heuristic& heuristic, const WitnessSpec& spec,
    rng::Rng& rng, std::size_t max_trials) {
  for (std::size_t trial = 1; trial <= max_trials; ++trial) {
    // The matrix must outlive the result (schedules reference it), so pin it
    // on the heap before running against it.
    Witness w;
    w.matrix =
        std::make_shared<const etc::EtcMatrix>(sample_matrix(spec, rng));
    auto result = try_matrix(heuristic, *w.matrix, spec, rng);
    if (result.has_value()) {
      w.result = *std::move(result);
      w.original_makespan = w.result.original().makespan;
      w.final_makespan = w.result.final_makespan();
      w.trials_used = trial;
      return w;
    }
  }
  return std::nullopt;
}

std::optional<Witness> find_makespan_increase_witness_parallel(
    const heuristics::Heuristic& heuristic, const WitnessSpec& spec,
    std::uint64_t seed, sim::ThreadPool& pool, std::size_t max_trials) {
  // Fixed-size blocks, one RNG stream per block: the winning (lowest-index)
  // block is independent of how blocks land on threads.
  constexpr std::size_t kBlock = 512;
  const std::size_t blocks = (max_trials + kBlock - 1) / kBlock;

  struct Hit {
    std::size_t block = 0;
    std::size_t trial_in_block = 0;
    std::shared_ptr<const etc::EtcMatrix> matrix{};
    IterativeResult result{};
  };
  // Shared search state as one annotated bundle: workers may only touch the
  // hit table or the cutoff while holding the capability, which the
  // thread-safety analysis proves for every path through the lambda below.
  struct SearchState {
    explicit SearchState(std::size_t blocks)
        : hits(blocks), best_block(blocks) {}
    Mutex mutex;
    std::vector<std::optional<Hit>> hits HCSCHED_GUARDED_BY(mutex);
    std::size_t best_block HCSCHED_GUARDED_BY(mutex);  // >= this cannot win
  };
  SearchState state(blocks);

  pool.parallel_for_chunks(blocks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      {
        const MutexLock lock(state.mutex);
        if (b >= state.best_block) continue;  // a lower block already hit
      }
      rng::Rng rng = rng::Rng(seed).split(b);
      const std::size_t count =
          std::min(kBlock, max_trials - b * kBlock);
      for (std::size_t i = 0; i < count; ++i) {
        auto matrix =
            std::make_shared<const etc::EtcMatrix>(sample_matrix(spec, rng));
        auto result = try_matrix(heuristic, *matrix, spec, rng);
        if (result.has_value()) {
          const MutexLock lock(state.mutex);
          state.hits[b] = Hit{b, i, std::move(matrix), *std::move(result)};
          state.best_block = std::min(state.best_block, b);
          break;
        }
      }
    }
  });

  // Workers have drained (parallel_for_chunks is a barrier), so this read
  // is single-threaded; the lock keeps the analysis airtight and is
  // uncontended.
  const MutexLock lock(state.mutex);
  for (std::size_t b = 0; b < blocks; ++b) {
    if (!state.hits[b].has_value()) continue;
    Witness w;
    w.matrix = state.hits[b]->matrix;
    w.result = std::move(state.hits[b]->result);
    w.original_makespan = w.result.original().makespan;
    w.final_makespan = w.result.final_makespan();
    w.trials_used = b * kBlock + state.hits[b]->trial_in_block + 1;
    return w;
  }
  return std::nullopt;
}

double makespan_increase_rate(const heuristics::Heuristic& heuristic,
                              const WitnessSpec& spec, rng::Rng& rng,
                              std::size_t trials) {
  if (trials == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const etc::EtcMatrix matrix = sample_matrix(spec, rng);
    if (try_matrix(heuristic, matrix, spec, rng).has_value()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace hcsched::core
