#include "core/theorems.hpp"

#include <cmath>
#include <string>

namespace hcsched::core {

namespace {

bool close(double a, double b, double eps) { return std::fabs(a - b) <= eps; }

}  // namespace

InvarianceReport check_mapping_invariance(const IterativeResult& result,
                                          double epsilon) {
  InvarianceReport report;
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    const IterationRecord& prev = result.iterations[i - 1];
    const IterationRecord& cur = result.iterations[i];
    for (sched::TaskId t : cur.problem().tasks()) {
      const auto before = prev.schedule.machine_of(t);
      const auto after = cur.schedule.machine_of(t);
      if (!before || !after || *before != *after) {
        report.holds = false;
        report.violation = "iteration " + std::to_string(i) + ": task " +
                           std::to_string(t) + " moved from machine " +
                           std::to_string(before ? *before : -1) + " to " +
                           std::to_string(after ? *after : -1);
        return report;
      }
    }
    for (sched::MachineId m : cur.problem().machines()) {
      const double before = prev.schedule.completion_time(m);
      const double after = cur.schedule.completion_time(m);
      if (!close(before, after, epsilon)) {
        report.holds = false;
        report.violation = "iteration " + std::to_string(i) + ": machine " +
                           std::to_string(m) + " completion changed " +
                           std::to_string(before) + " -> " +
                           std::to_string(after);
        return report;
      }
    }
  }
  return report;
}

InvarianceReport verify_theorem(const Heuristic& heuristic,
                                const Problem& problem, double epsilon) {
  TieBreaker deterministic;
  IterativeMinimizer minimizer{IterativeOptions{.use_seeding = false,
                                                .epsilon = epsilon}};
  const IterativeResult result =
      minimizer.run(heuristic, problem, deterministic);
  return check_mapping_invariance(result, epsilon);
}

InvarianceReport check_monotone_makespan(const IterativeResult& result,
                                         double epsilon) {
  InvarianceReport report;
  double ceiling = result.original().makespan;
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    const double span = result.iterations[i].makespan;
    if (span > ceiling + epsilon) {
      report.holds = false;
      report.violation = "iteration " + std::to_string(i) + " makespan " +
                         std::to_string(span) +
                         " exceeds original makespan " +
                         std::to_string(ceiling);
      return report;
    }
  }
  return report;
}

bool no_machine_worsened(const IterativeResult& result, double epsilon) {
  const std::vector<double> before = result.original_finishing_times();
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (result.final_finishing_times[i].second > before[i] + epsilon) {
      return false;
    }
  }
  return true;
}

}  // namespace hcsched::core
