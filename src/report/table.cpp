#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace hcsched::report {

std::string TextTable::num(double value, int max_decimals) {
  const double rounded = std::round(value);
  if (std::fabs(value - rounded) < 1e-9) {
    std::ostringstream os;
    os << static_cast<long long>(rounded);
    return os.str();
  }
  std::ostringstream os;
  os.precision(max_decimals);
  os << std::fixed << value;
  std::string s = os.str();
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string TextTable::to_string() const {
  // Column widths over header + rows.
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto rule = [&] {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i) {
      os << std::string(width[i] + 2, '-') << '+';
    }
    os << '\n';
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace hcsched::report
