#include "report/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "report/table.hpp"

namespace hcsched::report {

std::string render_gantt(const sched::Schedule& schedule,
                         GanttOptions options) {
  const sched::Problem& problem = schedule.problem();
  const double span = schedule.makespan();
  double scale = options.chars_per_unit;
  if (scale <= 0.0) {
    scale = span > 0.0
                ? static_cast<double>(options.target_width) / span
                : 1.0;
  }

  std::ostringstream os;
  for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
    const sched::MachineId machine = problem.machines()[slot];
    os << 'm' << machine << " |";
    std::size_t cursor = 0;  // characters drawn after the leading bar
    const double initial = problem.initial_ready(slot);
    if (initial > 0.0) {
      const auto pad = static_cast<std::size_t>(std::llround(initial * scale));
      os << std::string(pad > 0 ? pad - 0 : 0, '.');
      cursor += pad;
    }
    for (const sched::Assignment& a : schedule.queue_of(machine)) {
      const auto end_col =
          static_cast<std::size_t>(std::llround(a.finish * scale));
      std::string label("t");
      label += std::to_string(a.task);
      std::size_t box = end_col > cursor ? end_col - cursor : 1;
      if (box < label.size() + 1) box = label.size() + 1;
      os << label << std::string(box - label.size() - 1, ' ') << '|';
      cursor += box;
    }
    if (options.show_completion_times) {
      const std::size_t total =
          static_cast<std::size_t>(std::llround(span * scale)) + 4;
      if (cursor < total) os << std::string(total - cursor, ' ');
      os << " CT = " << TextTable::num(schedule.completion_time(machine));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hcsched::report
