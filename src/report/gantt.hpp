// ASCII Gantt charts — the repo's rendering of the paper's mapping figures
// (Figures 3, 4, 6, 7, 9-12, 15, 16, 18, 19).
//
// One row per machine, time flowing right, each task drawn as a labelled
// box scaled to its ETC:
//
//   m0 |t0            |                       CT = 5
//   m1 |t1|t2 |                               CT = 2
//   m2 |t3        |                           CT = 4
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace hcsched::report {

struct GanttOptions {
  /// Characters per time unit; 0 auto-scales so the longest machine row is
  /// about `target_width` characters.
  double chars_per_unit = 0.0;
  std::size_t target_width = 60;
  bool show_completion_times = true;
};

std::string render_gantt(const sched::Schedule& schedule,
                         GanttOptions options = {});

}  // namespace hcsched::report
