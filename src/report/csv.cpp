#include "report/csv.hpp"

#include <ostream>

namespace hcsched::report {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *os_ << ',';
    *os_ << escape(cells[i]);
  }
  *os_ << '\n';
}

}  // namespace hcsched::report
