// Minimal CSV writer (RFC-4180 quoting) for exporting bench series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hcsched::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Quotes a cell when it contains commas, quotes or newlines.
  static std::string escape(const std::string& cell);

 private:
  std::ostream* os_;
};

}  // namespace hcsched::report
