// Fixed-width ASCII tables for reproducing the paper's tabular output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hcsched::report {

class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Formats a double the way the paper prints them: integers without a
  /// decimal point, otherwise shortest fixed representation ("6.5", "0.31").
  static std::string num(double value, int max_decimals = 4);

  std::string to_string() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_{};
  std::vector<std::vector<std::string>> rows_{};
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace hcsched::report
